//! The CCL lexer.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (content, unescaped).
    Str(String),
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Source line.
    pub line: u32,
}

/// Lexes CCL source text.
///
/// `//` line comments are skipped. Returns an error message with a line
/// number on bad input.
pub fn lex(src: &str) -> Result<Vec<Spanned>, String> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push(Spanned { tok: Tok::Ident(src[start..i].to_owned()), line });
        } else if c.is_ascii_digit()
            || (c == '-' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()))
        {
            let start = i;
            i += 1;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let v: i64 = src[start..i].parse().map_err(|e| format!("line {line}: {e}"))?;
            out.push(Spanned { tok: Tok::Int(v), line });
        } else if c == '"' {
            i += 1;
            let mut s = String::new();
            loop {
                match bytes.get(i) {
                    None => return Err(format!("line {line}: unterminated string")),
                    Some(b'"') => {
                        i += 1;
                        break;
                    }
                    Some(b'\\') => {
                        match bytes.get(i + 1) {
                            Some(b'n') => s.push('\n'),
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            other => {
                                return Err(format!("line {line}: bad escape {other:?}"))
                            }
                        }
                        i += 2;
                    }
                    Some(&b) => {
                        if b == b'\n' {
                            line += 1;
                        }
                        s.push(b as char);
                        i += 1;
                    }
                }
            }
            out.push(Spanned { tok: Tok::Str(s), line });
        } else {
            // Multi-char operators first.
            let two: Option<&'static str> = if i + 1 < bytes.len() {
                match &src[i..i + 2] {
                    "==" => Some("=="),
                    "!=" => Some("!="),
                    "<=" => Some("<="),
                    ">=" => Some(">="),
                    "&&" => Some("&&"),
                    _ => None,
                }
            } else {
                None
            };
            if let Some(p) = two {
                out.push(Spanned { tok: Tok::Punct(p), line });
                i += 2;
            } else {
                let p: &'static str = match c {
                    '{' => "{",
                    '}' => "}",
                    '(' => "(",
                    ')' => ")",
                    '[' => "[",
                    ']' => "]",
                    ';' => ";",
                    ',' => ",",
                    '.' => ".",
                    ':' => ":",
                    '=' => "=",
                    '<' => "<",
                    '>' => ">",
                    '!' => "!",
                    _ => return Err(format!("line {line}: unexpected character {c:?}")),
                };
                out.push(Spanned { tok: Tok::Punct(p), line });
                i += 1;
            }
        }
    }
    out.push(Spanned { tok: Tok::Eof, line });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_all_token_kinds() {
        let toks = lex(r#"txn f(x) { M.put(x, "a"); n <= -3 } // comment"#).unwrap();
        let kinds: Vec<_> = toks.iter().map(|t| t.tok.clone()).collect();
        assert!(kinds.contains(&Tok::Ident("txn".into())));
        assert!(kinds.contains(&Tok::Str("a".into())));
        assert!(kinds.contains(&Tok::Int(-3)));
        assert!(kinds.contains(&Tok::Punct("<=")));
        assert_eq!(kinds.last(), Some(&Tok::Eof));
    }

    #[test]
    fn tracks_lines() {
        let toks = lex("a\nb\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn rejects_bad_chars() {
        assert!(lex("#").is_err());
        assert!(lex("\"unterminated").is_err());
    }
}
