//! Recursive-descent parser for CCL.

use std::fmt;

use c4_store::op::Name;

use crate::ast::*;
use crate::lexer::{lex, Spanned, Tok};

/// A parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: u32,
    /// Message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a CCL program.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src).map_err(|e| ParseError { line: e.line, message: e.message })?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { line: self.line(), message: message.into() })
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{p}`, found {other}")),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        loop {
            if matches!(self.peek(), Tok::Eof) {
                break;
            }
            if self.eat_kw("store") {
                self.expect_punct("{")?;
                while !self.eat_punct("}") {
                    self.object_decl(&mut prog)?;
                }
            } else if self.eat_kw("local") {
                prog.locals.push(self.ident()?);
                self.expect_punct(";")?;
            } else if self.eat_kw("global") {
                prog.globals.push(self.ident()?);
                self.expect_punct(";")?;
            } else if self.eat_kw("txn") {
                prog.txns.push(self.txn()?);
            } else if self.eat_kw("session") {
                self.expect_punct("{")?;
                let mut txns = Vec::new();
                loop {
                    txns.push(self.ident()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct("}")?;
                prog.sessions.push(txns);
            } else if self.eat_kw("atomicset") {
                self.expect_punct("{")?;
                let mut set = Vec::new();
                loop {
                    set.push(Name::new(self.ident()?));
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct("}")?;
                prog.atomic_sets.push(set);
            } else {
                return self.err(format!(
                    "expected `store`, `local`, `global`, `txn`, `session` or `atomicset`, found {}",
                    self.peek()
                ));
            }
        }
        Ok(prog)
    }

    fn object_decl(&mut self, prog: &mut Program) -> Result<(), ParseError> {
        let kind = self.ident()?;
        let name = Name::new(self.ident()?);
        let decl = match kind.as_str() {
            "register" => ObjectDecl::Register,
            "counter" => ObjectDecl::Counter,
            "set" => ObjectDecl::Set,
            "map" => ObjectDecl::Map,
            "log" => ObjectDecl::Log,
            "table" => {
                self.expect_punct("{")?;
                let mut fields = Vec::new();
                while !self.eat_punct("}") {
                    let f = Name::new(self.ident()?);
                    self.expect_punct(":")?;
                    let fk = match self.ident()?.as_str() {
                        "reg" => FieldKind::Reg,
                        "set" => FieldKind::Set,
                        other => return self.err(format!("unknown field kind `{other}`")),
                    };
                    fields.push((f, fk));
                    let _ = self.eat_punct(",");
                }
                prog.objects.push((name, ObjectDecl::Table(fields)));
                let _ = self.eat_punct(";"); // optional after a block
                return Ok(());
            }
            other => return self.err(format!("unknown object kind `{other}`")),
        };
        prog.objects.push((name, decl));
        self.expect_punct(";")?;
        Ok(())
    }

    fn txn(&mut self) -> Result<TxnDecl, ParseError> {
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                params.push(self.ident()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let body = self.block()?;
        Ok(TxnDecl { name, params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw("let") {
            let name = self.ident()?;
            self.expect_punct("=")?;
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Let(name, e));
        }
        if self.eat_kw("display") {
            let e = self.expr()?;
            self.expect_punct(";")?;
            let Expr::Call(c) = e else {
                return self.err("`display` expects a query call");
            };
            return Ok(Stmt::Display(*c));
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let c = self.condition()?;
            self.expect_punct(")")?;
            let then = self.block()?;
            let els = if self.eat_kw("else") { self.block()? } else { Vec::new() };
            return Ok(Stmt::If(c, then, els));
        }
        if self.eat_kw("repeat") {
            let n = match self.bump() {
                Tok::Int(v) if (1..=16).contains(&v) => v as u32,
                other => return self.err(format!("repeat count must be 1..=16, found {other}")),
            };
            let body = self.block()?;
            return Ok(Stmt::Repeat(n, body));
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let c = self.condition()?;
            self.expect_punct(")")?;
            let body = self.block()?;
            return Ok(Stmt::While(c, body));
        }
        let e = self.expr()?;
        self.expect_punct(";")?;
        let Expr::Call(c) = e else {
            return self.err("expected a call statement");
        };
        Ok(Stmt::Call(*c))
    }

    fn condition(&mut self) -> Result<Condition, ParseError> {
        let mut atoms = Vec::new();
        loop {
            let negated = self.eat_punct("!");
            let lhs = self.expr()?;
            let atom = match self.peek().clone() {
                Tok::Punct(op @ ("==" | "!=" | "<" | "<=" | ">" | ">=")) => {
                    if negated {
                        return self.err("`!` only applies to boolean expressions");
                    }
                    self.bump();
                    let rhs = self.expr()?;
                    let op = match op {
                        "==" => CmpOp::Eq,
                        "!=" => CmpOp::Ne,
                        "<" => CmpOp::Lt,
                        "<=" => CmpOp::Le,
                        ">" => CmpOp::Gt,
                        ">=" => CmpOp::Ge,
                        _ => unreachable!(),
                    };
                    (lhs, op, rhs)
                }
                _ => (lhs, CmpOp::Eq, Expr::Bool(!negated)),
            };
            atoms.push(atom);
            if !self.eat_punct("&&") {
                break;
            }
        }
        Ok(Condition { atoms })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            Tok::Ident(id) => {
                if id == "true" || id == "false" {
                    self.bump();
                    return Ok(Expr::Bool(id == "true"));
                }
                self.bump();
                // Call forms: `obj.method(args)` or `obj[row].field.method(args)`.
                if self.eat_punct("[") {
                    let row = self.expr()?;
                    self.expect_punct("]")?;
                    self.expect_punct(".")?;
                    let field = Name::new(self.ident()?);
                    self.expect_punct(".")?;
                    let method = self.ident()?;
                    let args = self.call_args()?;
                    return Ok(Expr::Call(Box::new(CallExpr {
                        object: Name::new(id),
                        row_field: Some((row, field)),
                        method,
                        args,
                    })));
                }
                if self.eat_punct(".") {
                    let method = self.ident()?;
                    let args = self.call_args()?;
                    return Ok(Expr::Call(Box::new(CallExpr {
                        object: Name::new(id),
                        row_field: None,
                        method,
                        args,
                    })));
                }
                Ok(Expr::Var(id))
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect_punct("(")?;
        let mut args = Vec::new();
        if !self.eat_punct(")") {
            loop {
                args.push(self.expr()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        Ok(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1a() {
        let p = parse(
            r#"
            store { map M; }
            txn P(x, y) { M.put(x, y); }
            txn G(z)    { M.get(z); }
        "#,
        )
        .unwrap();
        assert_eq!(p.objects.len(), 1);
        assert_eq!(p.txns.len(), 2);
        assert_eq!(p.txns[0].params, vec!["x", "y"]);
    }

    #[test]
    fn parses_tables_and_fields() {
        let p = parse(
            r#"
            store { table Quiz { question: reg, answer: reg } table Users { flwrs: set } }
            txn u(x, q) { Quiz[x].question.set(q); }
        "#,
        )
        .unwrap();
        assert!(matches!(p.object(&Name::new("Quiz")), Some(ObjectDecl::Table(f)) if f.len() == 2));
        let Stmt::Call(c) = &p.txns[0].body[0] else { panic!() };
        assert_eq!(c.row_field.as_ref().unwrap().1, Name::new("question"));
    }

    #[test]
    fn parses_control_flow() {
        let p = parse(
            r#"
            store { map M; counter C; }
            txn t(k) {
                if (C.get() < 10 && M.contains(k)) { C.inc(1); } else { M.remove(k); }
                while (!M.contains(k)) { M.put(k, 1); }
            }
        "#,
        )
        .unwrap();
        let Stmt::If(c, then, els) = &p.txns[0].body[0] else { panic!() };
        assert_eq!(c.atoms.len(), 2);
        assert_eq!(then.len(), 1);
        assert_eq!(els.len(), 1);
        let Stmt::While(c2, body) = &p.txns[0].body[1] else { panic!() };
        assert_eq!(c2.atoms[0].1, CmpOp::Eq);
        assert_eq!(c2.atoms[0].2, Expr::Bool(false));
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn parses_declarations_and_atomic_sets() {
        let p = parse(
            r#"
            store { map M; set S; }
            local u;
            global g;
            atomicset { M, S }
            txn t() { display M.get(u); }
        "#,
        )
        .unwrap();
        assert_eq!(p.locals, vec!["u"]);
        assert_eq!(p.globals, vec!["g"]);
        assert_eq!(p.atomic_sets.len(), 1);
        assert!(matches!(p.txns[0].body[0], Stmt::Display(_)));
    }

    #[test]
    fn reports_errors_with_lines() {
        let err = parse("store {\n  bogus M;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse("txn t() { 3; }").is_err());
    }

    #[test]
    fn parses_let_bindings() {
        let p = parse(
            r#"
            store { table T { f: reg } }
            txn t() { let r = T.add_row(); T[r].f.set(1); }
        "#,
        )
        .unwrap();
        assert!(matches!(&p.txns[0].body[0], Stmt::Let(n, Expr::Call(_)) if n == "r"));
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    #[test]
    fn nested_control_flow() {
        let p = parse(
            r#"
            store { map M; counter C; }
            txn t(k) {
                if (M.contains(k)) {
                    if (C.get() < 3) { C.inc(1); } else { C.inc(2); }
                } else {
                    while (C.get() > 0) { C.inc(-1); }
                }
            }
        "#,
        )
        .unwrap();
        let Stmt::If(_, then, els) = &p.txns[0].body[0] else { panic!() };
        assert!(matches!(then[0], Stmt::If(..)));
        assert!(matches!(els[0], Stmt::While(..)));
    }

    #[test]
    fn error_cases() {
        assert!(parse("txn t() { let = 3; }").is_err());
        assert!(parse("store { map M; } txn t( { }").is_err());
        assert!(parse("store { map M; } txn t() { M.put(1, 2) }").is_err()); // missing ;
        assert!(parse("store { table T { f: bogus } }").is_err());
        assert!(parse("store { map M; } txn t() { display 3; }").is_err());
        assert!(parse("store { map M; } txn t() { if (M.get(1) <) {} }").is_err());
    }

    #[test]
    fn logs_and_sessions_parse() {
        let p = parse(
            r#"
            store { log L; }
            txn say(m) { L.append(m); }
            txn peek() { display L.last(); }
            session { say, peek }
        "#,
        )
        .unwrap();
        assert_eq!(p.sessions, vec![vec!["say".to_string(), "peek".to_string()]]);
        assert!(matches!(p.object(&Name::new("L")), Some(ObjectDecl::Log)));
    }

    #[test]
    fn bare_and_negated_boolean_conditions() {
        let p = parse(
            r#"
            store { set S; }
            txn t(e) {
                if (S.contains(e)) { S.remove(e); }
                if (!S.contains(e)) { S.add(e); }
            }
        "#,
        )
        .unwrap();
        let Stmt::If(c1, ..) = &p.txns[0].body[0] else { panic!() };
        assert_eq!(c1.atoms[0].2, Expr::Bool(true));
        let Stmt::If(c2, ..) = &p.txns[0].body[1] else { panic!() };
        assert_eq!(c2.atoms[0].2, Expr::Bool(false));
    }
}
