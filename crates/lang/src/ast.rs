//! The CCL abstract syntax tree.

use c4_store::op::{FieldName, ObjectName};

/// Data-type of a declared store object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjectDecl {
    /// `register R;`
    Register,
    /// `counter C;`
    Counter,
    /// `set S;`
    Set,
    /// `map M;`
    Map,
    /// `log L;` — an append-only sequence.
    Log,
    /// `table T { f: reg, g: set }`
    Table(Vec<(FieldName, FieldKind)>),
}

/// Kind of a table field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// Register-valued field.
    Reg,
    /// Set-valued field.
    Set,
}

/// A value-producing expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// Reference to a parameter, `let` binding, local or global constant.
    Var(String),
    /// A query call used as a value (emits the query event inline).
    Call(Box<CallExpr>),
}

/// A method call on a store object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallExpr {
    /// The object name.
    pub object: ObjectName,
    /// `Some((row_expr, field))` for `T[r].f.m(…)` calls.
    pub row_field: Option<(Expr, FieldName)>,
    /// The method name (`put`, `get`, `add`, `contains`, …).
    pub method: String,
    /// Argument expressions.
    pub args: Vec<Expr>,
}

/// Comparison operators in conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A condition: a conjunction of comparisons (a bare boolean expression
/// `e` abbreviates `e == true`, `!e` abbreviates `e == false`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condition {
    /// The conjuncts.
    pub atoms: Vec<(Expr, CmpOp, Expr)>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// An update or ignored-result query call.
    Call(CallExpr),
    /// `let x = <call or expr>;`
    Let(String, Expr),
    /// `display <call>;` — query used only for display (Section 9.1).
    Display(CallExpr),
    /// `if (c) { … } else { … }`
    If(Condition, Vec<Stmt>, Vec<Stmt>),
    /// `while (c) { … }` — produces a cyclic abstract event order.
    While(Condition, Vec<Stmt>),
    /// `repeat N { … }` — static unrolling sugar (acyclic).
    Repeat(u32, Vec<Stmt>),
}

/// A transaction declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnDecl {
    /// The name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// The body.
    pub body: Vec<Stmt>,
}

impl TxnDecl {
    /// The static object footprint: every store object the body can touch
    /// on any path. Conservative (branch-insensitive), used by the model
    /// checker's independence relation.
    pub fn object_footprint(&self) -> std::collections::BTreeSet<ObjectName> {
        let mut out = std::collections::BTreeSet::new();
        collect_stmts(&self.body, &mut out);
        out
    }
}

fn collect_stmts(stmts: &[Stmt], out: &mut std::collections::BTreeSet<ObjectName>) {
    for s in stmts {
        match s {
            Stmt::Call(c) | Stmt::Display(c) => collect_call(c, out),
            Stmt::Let(_, e) => collect_expr(e, out),
            Stmt::If(c, then, els) => {
                collect_cond(c, out);
                collect_stmts(then, out);
                collect_stmts(els, out);
            }
            Stmt::While(c, body) => {
                collect_cond(c, out);
                collect_stmts(body, out);
            }
            Stmt::Repeat(_, body) => collect_stmts(body, out),
        }
    }
}

fn collect_cond(c: &Condition, out: &mut std::collections::BTreeSet<ObjectName>) {
    for (l, _, r) in &c.atoms {
        collect_expr(l, out);
        collect_expr(r, out);
    }
}

fn collect_expr(e: &Expr, out: &mut std::collections::BTreeSet<ObjectName>) {
    if let Expr::Call(c) = e {
        collect_call(c, out);
    }
}

fn collect_call(c: &CallExpr, out: &mut std::collections::BTreeSet<ObjectName>) {
    out.insert(c.object.clone());
    if let Some((row, _)) = &c.row_field {
        collect_expr(row, out);
    }
    for a in &c.args {
        collect_expr(a, out);
    }
}

/// A full CCL program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Store object declarations.
    pub objects: Vec<(ObjectName, ObjectDecl)>,
    /// Session-local constants.
    pub locals: Vec<String>,
    /// Global constants.
    pub globals: Vec<String>,
    /// Transactions.
    pub txns: Vec<TxnDecl>,
    /// Atomic-set declarations (object name groups).
    pub atomic_sets: Vec<Vec<ObjectName>>,
    /// Session-structure declarations: each names the transactions a
    /// session may run, in order-free succession. Empty = any transaction
    /// may follow any other (the free session order).
    pub sessions: Vec<Vec<String>>,
}

impl Program {
    /// Looks up an object declaration.
    pub fn object(&self, name: &ObjectName) -> Option<&ObjectDecl> {
        self.objects.iter().find(|(n, _)| n == name).map(|(_, d)| d)
    }

    /// Looks up a transaction by name.
    pub fn txn(&self, name: &str) -> Option<&TxnDecl> {
        self.txns.iter().find(|t| t.name == name)
    }
}
