//! Concrete execution of CCL transactions against the causal-store
//! simulator (the workload driver of the dynamic-analysis baseline).

use std::collections::HashMap;
use std::fmt;

use c4_store::op::OpKind;
use c4_store::sim::{CausalSim, SimSession};
use c4_store::Value;

use crate::ast::*;

/// An error raised during concrete execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// Message.
    pub message: String,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "execution error: {}", self.message)
    }
}

impl std::error::Error for ExecError {}

/// Executes transactions of a program concretely on a [`CausalSim`].
///
/// Session-local and global constants receive the values supplied at
/// construction; loops are bounded by `loop_fuel` to guarantee
/// termination.
#[derive(Debug)]
pub struct TxnRunner<'p> {
    program: &'p Program,
    /// Values of the session-local constants, per session.
    pub locals: HashMap<(usize, String), Value>,
    /// Values of the global constants.
    pub globals: HashMap<String, Value>,
    /// Maximum loop iterations before the loop exits early.
    pub loop_fuel: u32,
}

impl<'p> TxnRunner<'p> {
    /// Creates a runner.
    pub fn new(program: &'p Program) -> Self {
        TxnRunner { program, locals: HashMap::new(), globals: HashMap::new(), loop_fuel: 16 }
    }

    /// Runs one transaction (begin…commit) in the simulator session.
    ///
    /// `session_id` selects which session-local constant values apply.
    ///
    /// # Errors
    ///
    /// Fails on arity mismatch or unknown names (consistent with the
    /// abstract interpreter's checks).
    pub fn run(
        &mut self,
        sim: &mut CausalSim,
        sess: SimSession,
        session_id: usize,
        txn_name: &str,
        args: Vec<Value>,
    ) -> Result<(), ExecError> {
        let Some(txn) = self.program.txn(txn_name) else {
            return Err(ExecError { message: format!("unknown txn `{txn_name}`") });
        };
        if args.len() != txn.params.len() {
            return Err(ExecError { message: format!("arity mismatch calling `{txn_name}`") });
        }
        let mut env: HashMap<String, Value> = txn.params.iter().cloned().zip(args).collect();
        for (name, _) in self.locals.keys().cloned().collect::<Vec<_>>().iter().filter_map(|(s, n)| {
            (*s == session_id).then_some((n.clone(), ()))
        }) {
            env.insert(name.clone(), self.locals[&(session_id, name)].clone());
        }
        for (g, v) in &self.globals {
            env.insert(g.clone(), v.clone());
        }
        sim.begin(sess);
        let body = txn.body.clone();
        let result = self.stmts(sim, sess, &mut env, &body);
        sim.commit(sess);
        result
    }

    fn stmts(
        &mut self,
        sim: &mut CausalSim,
        sess: SimSession,
        env: &mut HashMap<String, Value>,
        stmts: &[Stmt],
    ) -> Result<(), ExecError> {
        for s in stmts {
            self.stmt(sim, sess, env, s)?;
        }
        Ok(())
    }

    fn stmt(
        &mut self,
        sim: &mut CausalSim,
        sess: SimSession,
        env: &mut HashMap<String, Value>,
        s: &Stmt,
    ) -> Result<(), ExecError> {
        match s {
            Stmt::Call(c) | Stmt::Display(c) => {
                self.call(sim, sess, env, c)?;
                Ok(())
            }
            Stmt::Let(name, e) => {
                let v = self.eval(sim, sess, env, e)?;
                env.insert(name.clone(), v);
                Ok(())
            }
            Stmt::If(cond, then, els) => {
                if self.cond(sim, sess, env, cond)? {
                    self.stmts(sim, sess, env, then)
                } else {
                    self.stmts(sim, sess, env, els)
                }
            }
            Stmt::Repeat(n, body) => {
                for _ in 0..*n {
                    self.stmts(sim, sess, env, body)?;
                }
                Ok(())
            }
            Stmt::While(cond, body) => {
                let mut fuel = self.loop_fuel;
                while fuel > 0 && self.cond(sim, sess, env, cond)? {
                    self.stmts(sim, sess, env, body)?;
                    fuel -= 1;
                }
                Ok(())
            }
        }
    }

    fn cond(
        &mut self,
        sim: &mut CausalSim,
        sess: SimSession,
        env: &mut HashMap<String, Value>,
        c: &Condition,
    ) -> Result<bool, ExecError> {
        for (l, op, r) in &c.atoms {
            let lv = self.eval(sim, sess, env, l)?;
            let rv = self.eval(sim, sess, env, r)?;
            let holds = match op {
                CmpOp::Eq => lv == rv,
                CmpOp::Ne => lv != rv,
                _ => {
                    let (Some(a), Some(b)) = (lv.as_int(), rv.as_int()) else {
                        return Err(ExecError { message: "non-numeric comparison".into() });
                    };
                    match op {
                        CmpOp::Lt => a < b,
                        CmpOp::Le => a <= b,
                        CmpOp::Gt => a > b,
                        CmpOp::Ge => a >= b,
                        _ => unreachable!(),
                    }
                }
            };
            if !holds {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn eval(
        &mut self,
        sim: &mut CausalSim,
        sess: SimSession,
        env: &mut HashMap<String, Value>,
        e: &Expr,
    ) -> Result<Value, ExecError> {
        match e {
            Expr::Int(v) => Ok(Value::int(*v)),
            Expr::Str(s) => Ok(Value::str(s.clone())),
            Expr::Bool(b) => Ok(Value::bool(*b)),
            Expr::Var(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| ExecError { message: format!("unbound identifier `{name}`") }),
            Expr::Call(c) => self.call(sim, sess, env, c),
        }
    }

    fn call(
        &mut self,
        sim: &mut CausalSim,
        sess: SimSession,
        env: &mut HashMap<String, Value>,
        c: &CallExpr,
    ) -> Result<Value, ExecError> {
        let Some(decl) = self.program.object(&c.object) else {
            return Err(ExecError { message: format!("unknown object `{}`", c.object) });
        };
        let decl = decl.clone();
        let (kind, args): (OpKind, Vec<Value>) = match (&decl, &c.row_field) {
            (ObjectDecl::Table(fields), Some((row, field))) => {
                let Some((_, fk)) = fields.iter().find(|(f, _)| f == field) else {
                    return Err(ExecError { message: format!("unknown field `{field}`") });
                };
                let fk = *fk;
                let rv = self.eval(sim, sess, env, row)?;
                let mut vals = vec![rv];
                for a in &c.args {
                    vals.push(self.eval(sim, sess, env, a)?);
                }
                let kind = match (fk, c.method.as_str()) {
                    (FieldKind::Reg, "set") => OpKind::FldSet(field.clone()),
                    (FieldKind::Reg, "get") => OpKind::FldGet(field.clone()),
                    (FieldKind::Set, "add") => OpKind::FldAdd(field.clone()),
                    (FieldKind::Set, "remove") => OpKind::FldRemove(field.clone()),
                    (FieldKind::Set, "contains") => OpKind::FldContains(field.clone()),
                    (FieldKind::Set, "size") => OpKind::FldSize(field.clone()),
                    _ => return Err(ExecError { message: format!("bad method `{}`", c.method) }),
                };
                (kind, vals)
            }
            (_, Some(_)) => {
                return Err(ExecError { message: format!("`{}` is not a table", c.object) })
            }
            (decl, None) => {
                let kind = match (decl, c.method.as_str()) {
                    (ObjectDecl::Register, "put") => OpKind::RegPut,
                    (ObjectDecl::Register, "get") => OpKind::RegGet,
                    (ObjectDecl::Counter, "inc") => OpKind::CtrInc,
                    (ObjectDecl::Counter, "get") => OpKind::CtrGet,
                    (ObjectDecl::Set, "add") => OpKind::SetAdd,
                    (ObjectDecl::Set, "remove") => OpKind::SetRemove,
                    (ObjectDecl::Set, "contains") => OpKind::SetContains,
                    (ObjectDecl::Set, "size") => OpKind::SetSize,
                    (ObjectDecl::Map, "put") => OpKind::MapPut,
                    (ObjectDecl::Map, "get") => OpKind::MapGet,
                    (ObjectDecl::Map, "remove") => OpKind::MapRemove,
                    (ObjectDecl::Map, "contains") => OpKind::MapContains,
                    (ObjectDecl::Map, "size") => OpKind::MapSize,
                    (ObjectDecl::Map, "copy") => OpKind::MapCopy,
                    (ObjectDecl::Log, "append") => OpKind::LogAppend,
                    (ObjectDecl::Log, "last") => OpKind::LogLast,
                    (ObjectDecl::Log, "count") => OpKind::LogCount,
                    (ObjectDecl::Log, "has") => OpKind::LogHas,
                    (ObjectDecl::Table(_), "add_row") => OpKind::TblAddRow,
                    (ObjectDecl::Table(_), "delete_row") => OpKind::TblDeleteRow,
                    (ObjectDecl::Table(_), "contains") => OpKind::TblContains,
                    _ => return Err(ExecError { message: format!("bad method `{}`", c.method) }),
                };
                let mut vals = Vec::new();
                for a in &c.args {
                    vals.push(self.eval(sim, sess, env, a)?);
                }
                (kind, vals)
            }
        };
        if kind == OpKind::TblAddRow {
            let row = Value::from(sim.fresh_row());
            sim.update(sess, c.object.clone(), kind, vec![row.clone()]);
            return Ok(row);
        }
        if kind.is_update() {
            sim.update(sess, c.object.clone(), kind, args);
            Ok(Value::Unit)
        } else {
            Ok(sim.query(sess, c.object.clone(), kind, args))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn executes_figure1a_scenario() {
        let p = parse(
            r#"
            store { map M; }
            txn P(x, y) { M.put(x, y); }
            txn G(z)    { display M.get(z); }
        "#,
        )
        .unwrap();
        let mut sim = CausalSim::new(2);
        let s0 = sim.session(0);
        let s1 = sim.session(1);
        let mut runner = TxnRunner::new(&p);
        runner.run(&mut sim, s0, 0, "P", vec![Value::str("A"), Value::int(1)]).unwrap();
        runner.run(&mut sim, s1, 1, "P", vec![Value::str("B"), Value::int(2)]).unwrap();
        runner.run(&mut sim, s0, 0, "G", vec![Value::str("B")]).unwrap();
        runner.run(&mut sim, s1, 1, "G", vec![Value::str("A")]).unwrap();
        sim.deliver_all();
        let (h, sched) = sim.into_history();
        sched.check(&h).unwrap();
        assert_eq!(h.transactions().count(), 4);
        // The classic non-serializable run: no cross-delivery happened.
        assert!(!c4_store::schedule::serializable_by_enumeration(&h));
    }

    #[test]
    fn control_flow_and_bindings() {
        let p = parse(
            r#"
            store { counter C; table T { f: reg } }
            txn t() {
                if (C.get() < 2) { C.inc(5); } else { C.inc(1); }
                let r = T.add_row();
                T[r].f.set(C.get());
            }
        "#,
        )
        .unwrap();
        let mut sim = CausalSim::new(1);
        let s = sim.session(0);
        let mut runner = TxnRunner::new(&p);
        runner.run(&mut sim, s, 0, "t", vec![]).unwrap();
        runner.run(&mut sim, s, 0, "t", vec![]).unwrap();
        let (h, sched) = sim.into_history();
        sched.check(&h).unwrap();
        // First run increments by 5 (counter 0 < 2), second by 1.
        let incs: Vec<_> = h
            .events()
            .filter(|e| e.op.kind == OpKind::CtrInc)
            .map(|e| e.op.args[0].clone())
            .collect();
        assert_eq!(incs, vec![Value::int(5), Value::int(1)]);
        // Fresh rows differ between the two runs.
        let rows: Vec<_> = h
            .events()
            .filter(|e| e.op.kind == OpKind::TblAddRow)
            .map(|e| e.op.args[0].clone())
            .collect();
        assert_ne!(rows[0], rows[1]);
    }

    #[test]
    fn loops_are_fueled() {
        let p = parse(
            r#"
            store { set S; counter C; }
            txn spin() {
                S.add(1);
                while (S.contains(1)) { C.inc(1); }
            }
        "#,
        )
        .unwrap();
        let mut sim = CausalSim::new(1);
        let s = sim.session(0);
        let mut runner = TxnRunner::new(&p);
        runner.loop_fuel = 3;
        runner.run(&mut sim, s, 0, "spin", vec![]).unwrap();
        let (h, _) = sim.into_history();
        let incs = h.events().filter(|e| e.op.kind == OpKind::CtrInc).count();
        assert_eq!(incs, 3);
    }

    #[test]
    fn locals_and_globals_substitute() {
        let p = parse(
            r#"
            store { map M; }
            local u;
            txn w(v) { M.put(u, v); }
        "#,
        )
        .unwrap();
        let mut sim = CausalSim::new(1);
        let s = sim.session(0);
        let mut runner = TxnRunner::new(&p);
        runner.locals.insert((0, "u".into()), Value::str("k0"));
        runner.run(&mut sim, s, 0, "w", vec![Value::int(9)]).unwrap();
        let (h, _) = sim.into_history();
        let put = h.events().next().unwrap();
        assert_eq!(put.op.args[0], Value::str("k0"));
    }
}
