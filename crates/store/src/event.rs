//! Events: executed operations tagged with unique identifiers.

use std::fmt;

use crate::op::Operation;

/// Unique identifier of an event within a [`crate::History`].
///
/// Identifiers are dense indices assigned by [`crate::HistoryBuilder`]; they
/// index into the history's event table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u32);

impl EventId {
    /// The identifier as a dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An execution of a single operation: the paper's
/// `m(a1, …, an−1) : an` tuple tagged with a unique identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The unique identifier of this event.
    pub id: EventId,
    /// The executed operation (symbol, arguments, return value).
    pub op: Operation,
}

impl Event {
    /// Whether this event is an update (`e ∈ U`).
    pub fn is_update(&self) -> bool {
        self.op.is_update()
    }

    /// Whether this event is a query (`e ∈ Q`).
    pub fn is_query(&self) -> bool {
        self.op.is_query()
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.op, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn classification_follows_operation() {
        let e = Event { id: EventId(0), op: Operation::reg_put("R", Value::int(1)) };
        assert!(e.is_update());
        assert!(!e.is_query());
        let q = Event { id: EventId(1), op: Operation::reg_get("R", Value::int(1)) };
        assert!(q.is_query());
    }

    #[test]
    fn display_includes_identity() {
        let e = Event { id: EventId(3), op: Operation::ctr_inc("C", 1) };
        assert_eq!(e.to_string(), "C.inc(1)[e3]");
    }
}
