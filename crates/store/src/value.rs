//! The value domain of the data store.

use std::fmt;

/// Identity of a table row created with a fresh-row operation.
///
/// Row identifiers are guaranteed unique by the store (akin to dynamic
/// memory allocation in shared-memory environments, see Section 8 of the
/// paper): two `add_row` events never produce the same [`RowId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub u64);

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A concrete value stored in, or passed to, the data store.
///
/// `Value` is the domain of operation arguments and query results. The
/// initial value of every register-like location is [`Value::Unit`]; missing
/// map entries read as `Unit`, absent counters as `Int(0)`, and membership
/// queries return `Bool`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Value {
    /// The default/initial value, also used for "absent".
    #[default]
    Unit,
    /// A boolean, produced by `contains`-style queries.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// An immutable string.
    Str(String),
    /// A table row identity (see [`RowId`]).
    Row(RowId),
}

impl Value {
    /// Convenience constructor for integer values.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Convenience constructor for string values.
    pub fn str(v: impl Into<String>) -> Self {
        Value::Str(v.into())
    }

    /// Convenience constructor for boolean values.
    pub fn bool(v: bool) -> Self {
        Value::Bool(v)
    }

    /// Convenience constructor for row identities.
    pub fn row(id: u64) -> Self {
        Value::Row(RowId(id))
    }

    /// Returns the integer content, or 0 for `Unit` (the counter initial
    /// value), or `None` for non-numeric values.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Unit => Some(0),
            _ => None,
        }
    }

    /// Returns the boolean content if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this value is the unit/absent value.
    pub fn is_unit(&self) -> bool {
        matches!(self, Value::Unit)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<RowId> for Value {
    fn from(v: RowId) -> Self {
        Value::Row(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "ø"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Row(r) => write!(f, "{r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_int_treats_unit_as_zero() {
        assert_eq!(Value::Unit.as_int(), Some(0));
        assert_eq!(Value::int(7).as_int(), Some(7));
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Unit.to_string(), "ø");
        assert_eq!(Value::bool(true).to_string(), "true");
        assert_eq!(Value::row(3).to_string(), "#3");
        assert_eq!(Value::str("a").to_string(), "\"a\"");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(RowId(9)), Value::Row(RowId(9)));
    }

    #[test]
    fn ordering_is_total() {
        let mut vs = vec![Value::int(2), Value::Unit, Value::str("b"), Value::bool(false)];
        vs.sort();
        assert_eq!(vs[0], Value::Unit);
    }
}
