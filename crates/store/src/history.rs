//! Histories: finite sets of events with a session order and a partition
//! into transactions (Section 3 of the paper).
//!
//! A history `H = (Ev, so, Tx)` consists of a finite set of events `Ev`, a
//! session order `so` whose connected components are chains (the
//! *sessions*), and a partition `Tx` of the sessions into contiguous blocks
//! (the *transactions*).
//!
//! We represent sessions explicitly as sequences of events and transactions
//! as contiguous spans within them; `so` is derived. This representation
//! makes the chain/contiguity well-formedness conditions true by
//! construction.

use std::fmt;

use crate::event::{Event, EventId};
use crate::op::Operation;

/// Identifier of a session within a history (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u32);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of a transaction within a history (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(pub u32);

impl TxId {
    /// The identifier as a dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A transaction: a contiguous block of events within one session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// The transaction's identifier.
    pub id: TxId,
    /// The session this transaction belongs to.
    pub session: SessionId,
    /// The events of the transaction, in session order.
    pub events: Vec<EventId>,
}

/// A history `H = (Ev, so, Tx)`.
///
/// Constructed through [`HistoryBuilder`]; immutable afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct History {
    events: Vec<Event>,
    sessions: Vec<Vec<EventId>>,
    transactions: Vec<Transaction>,
    /// For each event: (session, transaction, position in session).
    locate: Vec<(SessionId, TxId, usize)>,
}

impl History {
    /// The event with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this history.
    pub fn event(&self, id: EventId) -> &Event {
        &self.events[id.index()]
    }

    /// All events, in identifier order.
    pub fn events(&self) -> impl ExactSizeIterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The sessions: each is the chain of its events in session order.
    pub fn sessions(&self) -> impl ExactSizeIterator<Item = &[EventId]> {
        self.sessions.iter().map(|s| s.as_slice())
    }

    /// Number of sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The transactions of the history.
    pub fn transactions(&self) -> impl ExactSizeIterator<Item = &Transaction> {
        self.transactions.iter()
    }

    /// The transaction with the given identifier.
    pub fn transaction(&self, id: TxId) -> &Transaction {
        &self.transactions[id.index()]
    }

    /// The session an event belongs to.
    pub fn session_of(&self, e: EventId) -> SessionId {
        self.locate[e.index()].0
    }

    /// The transaction an event belongs to.
    pub fn tx_of(&self, e: EventId) -> TxId {
        self.locate[e.index()].1
    }

    /// Position of an event within its session's chain.
    pub fn session_position(&self, e: EventId) -> usize {
        self.locate[e.index()].2
    }

    /// Session order: `e so→ f` iff both belong to the same session and `e`
    /// precedes `f` in its chain.
    pub fn so(&self, e: EventId, f: EventId) -> bool {
        self.session_of(e) == self.session_of(f) && self.session_position(e) < self.session_position(f)
    }

    /// Iterates over all `so` pairs (quadratic in session length).
    pub fn so_pairs(&self) -> impl Iterator<Item = (EventId, EventId)> + '_ {
        self.sessions.iter().flat_map(|sess| {
            sess.iter()
                .enumerate()
                .flat_map(move |(i, &e)| sess[i + 1..].iter().map(move |&f| (e, f)))
        })
    }

    /// Restricts the history to a subset of events, preserving session and
    /// transaction structure (the restriction operator of Theorem 2).
    ///
    /// Returns the restricted history together with the mapping from old
    /// event ids to new ones.
    pub fn restrict(&self, keep: impl Fn(EventId) -> bool) -> (History, Vec<Option<EventId>>) {
        let mut b = HistoryBuilder::new();
        let mut map: Vec<Option<EventId>> = vec![None; self.events.len()];
        for sess in &self.sessions {
            let mut new_sess: Option<SessionId> = None;
            let mut cur_tx: Option<(TxId, TxId)> = None; // (old, new)
            for &e in sess {
                if !keep(e) {
                    continue;
                }
                let s = *new_sess.get_or_insert_with(|| b.session());
                let old_tx = self.tx_of(e);
                let new_tx = match cur_tx {
                    Some((o, n)) if o == old_tx => n,
                    _ => {
                        let n = b.begin(s);
                        cur_tx = Some((old_tx, n));
                        n
                    }
                };
                let id = b.push(new_tx, self.event(e).op.clone());
                map[e.index()] = Some(id);
            }
        }
        (b.finish(), map)
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, sess) in self.sessions.iter().enumerate() {
            writeln!(f, "session s{i}:")?;
            let mut last_tx = None;
            for &e in sess {
                let tx = self.tx_of(e);
                if last_tx != Some(tx) {
                    writeln!(f, "  txn {tx}:")?;
                    last_tx = Some(tx);
                }
                writeln!(f, "    {}", self.event(e))?;
            }
        }
        Ok(())
    }
}

/// Incremental constructor for [`History`].
///
/// # Example
///
/// ```
/// use c4_store::{HistoryBuilder, Value, op::Operation};
///
/// let mut b = HistoryBuilder::new();
/// let s = b.session();
/// let t = b.begin(s);
/// b.push(t, Operation::map_put("M", Value::str("A"), Value::int(1)));
/// let t2 = b.begin(s);
/// b.push(t2, Operation::map_get("M", Value::str("B"), Value::int(0)));
/// let h = b.finish();
/// assert_eq!(h.session_count(), 1);
/// assert_eq!(h.transactions().count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct HistoryBuilder {
    events: Vec<Event>,
    sessions: Vec<Vec<EventId>>,
    transactions: Vec<Transaction>,
    open: Vec<Option<TxId>>, // currently open transaction per session
}

impl HistoryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        HistoryBuilder::default()
    }

    /// Opens a new session and returns its identifier.
    pub fn session(&mut self) -> SessionId {
        let id = SessionId(self.sessions.len() as u32);
        self.sessions.push(Vec::new());
        self.open.push(None);
        id
    }

    /// Begins a new transaction in the given session.
    ///
    /// Any previously open transaction in the session is closed first
    /// (transactions are contiguous blocks, so beginning a new one ends the
    /// previous one).
    pub fn begin(&mut self, session: SessionId) -> TxId {
        let id = TxId(self.transactions.len() as u32);
        self.transactions.push(Transaction { id, session, events: Vec::new() });
        self.open[session.0 as usize] = Some(id);
        id
    }

    /// Appends an event executing `op` to the given transaction.
    ///
    /// # Panics
    ///
    /// Panics if `tx` is not the most recently begun transaction of its
    /// session (transactions must stay contiguous).
    pub fn push(&mut self, tx: TxId, op: Operation) -> EventId {
        let session = self.transactions[tx.index()].session;
        assert_eq!(
            self.open[session.0 as usize],
            Some(tx),
            "events may only be appended to the session's open transaction"
        );
        let id = EventId(self.events.len() as u32);
        self.events.push(Event { id, op });
        self.sessions[session.0 as usize].push(id);
        self.transactions[tx.index()].events.push(id);
        id
    }

    /// Finishes construction, dropping empty transactions.
    pub fn finish(mut self) -> History {
        // Drop empty transactions and renumber.
        let mut renumber = Vec::with_capacity(self.transactions.len());
        let mut kept = Vec::new();
        for t in self.transactions.drain(..) {
            if t.events.is_empty() {
                renumber.push(None);
            } else {
                let new_id = TxId(kept.len() as u32);
                renumber.push(Some(new_id));
                kept.push(Transaction { id: new_id, ..t });
            }
        }
        let mut locate = vec![(SessionId(0), TxId(0), 0usize); self.events.len()];
        for (si, sess) in self.sessions.iter().enumerate() {
            for (pos, &e) in sess.iter().enumerate() {
                locate[e.index()].0 = SessionId(si as u32);
                locate[e.index()].2 = pos;
            }
        }
        for t in &kept {
            for &e in &t.events {
                locate[e.index()].1 = t.id;
            }
        }
        History { events: self.events, sessions: self.sessions, transactions: kept, locate }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn two_session_history() -> History {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        let t0 = b.begin(s0);
        b.push(t0, Operation::map_put("M", Value::str("A"), Value::int(1)));
        let t1 = b.begin(s0);
        b.push(t1, Operation::map_get("M", Value::str("B"), Value::int(0)));
        let t2 = b.begin(s1);
        b.push(t2, Operation::map_put("M", Value::str("B"), Value::int(2)));
        let t3 = b.begin(s1);
        b.push(t3, Operation::map_get("M", Value::str("A"), Value::int(0)));
        b.finish()
    }

    #[test]
    fn sessions_and_transactions() {
        let h = two_session_history();
        assert_eq!(h.session_count(), 2);
        assert_eq!(h.transactions().count(), 4);
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn session_order_within_not_across() {
        let h = two_session_history();
        let (e0, e1, e2, e3) = (EventId(0), EventId(1), EventId(2), EventId(3));
        assert!(h.so(e0, e1));
        assert!(!h.so(e1, e0));
        assert!(!h.so(e0, e2));
        assert!(h.so(e2, e3));
        assert_eq!(h.so_pairs().count(), 2);
    }

    #[test]
    fn locate_is_consistent() {
        let h = two_session_history();
        for t in h.transactions() {
            for &e in &t.events {
                assert_eq!(h.tx_of(e), t.id);
                assert_eq!(h.session_of(e), t.session);
            }
        }
    }

    #[test]
    fn empty_transactions_are_dropped() {
        let mut b = HistoryBuilder::new();
        let s = b.session();
        let _empty = b.begin(s);
        let t = b.begin(s);
        b.push(t, Operation::ctr_inc("C", 1));
        let h = b.finish();
        assert_eq!(h.transactions().count(), 1);
        assert_eq!(h.tx_of(EventId(0)), TxId(0));
    }

    #[test]
    fn restriction_preserves_structure() {
        let h = two_session_history();
        // Keep only the two puts.
        let (r, map) = h.restrict(|e| h.event(e).op.is_update());
        assert_eq!(r.len(), 2);
        assert_eq!(r.session_count(), 2);
        assert!(map[0].is_some());
        assert!(map[1].is_none());
        // Events keep their operations.
        let new0 = map[0].unwrap();
        assert_eq!(r.event(new0).op, h.event(EventId(0)).op);
    }

    #[test]
    #[should_panic(expected = "open transaction")]
    fn push_to_closed_transaction_panics() {
        let mut b = HistoryBuilder::new();
        let s = b.session();
        let t0 = b.begin(s);
        let _t1 = b.begin(s);
        b.push(t0, Operation::ctr_inc("C", 1));
    }

    #[test]
    fn display_is_readable() {
        let h = two_session_history();
        let s = h.to_string();
        assert!(s.contains("session s0"));
        assert!(s.contains("M.put(\"A\",1)"));
    }
}
