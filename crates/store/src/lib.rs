//! Formal model of a causally-consistent data store, following Section 3 of
//! *Static Serializability Analysis for Causal Consistency* (PLDI 2018).
//!
//! The crate provides:
//!
//! * [`Value`] and [`value::RowId`] — the value domain shared by all data
//!   types;
//! * [`op`] — the fixed alphabet of update and query operations over
//!   high-level replicated data types (registers, counters, sets, maps and
//!   tables with implicit record creation and fresh row generation);
//! * [`Event`] — executed operations tagged with unique identifiers;
//! * [`History`] — a finite set of events together with a session order and
//!   a partition into transactions;
//! * [`Schedule`] — a pair of visibility and arbitration orders, with
//!   checkers for the well-formedness conditions (S1)–(S3) of the paper;
//! * [`semantics`] — the sequential semantics of the operations, used to
//!   define legality of event sequences;
//! * [`sim`] — an executable multi-replica causal store simulator that
//!   produces histories with legal schedules (causal delivery, atomic
//!   visibility), used by the dynamic-analysis baseline.
//!
//! # Example
//!
//! ```
//! use c4_store::{HistoryBuilder, Value, op::Operation};
//!
//! let mut h = HistoryBuilder::new();
//! let s = h.session();
//! let t = h.begin(s);
//! h.push(t, Operation::map_put("M", Value::str("A"), Value::int(1)));
//! let history = h.finish();
//! assert_eq!(history.events().count(), 1);
//! ```

pub mod event;
pub mod history;
pub mod op;
pub mod schedule;
pub mod semantics;
pub mod sim;
pub mod value;

pub use event::{Event, EventId};
pub use history::{History, HistoryBuilder, SessionId, Transaction, TxId};
pub use op::{ObjectName, OpKind, Operation};
pub use schedule::{Schedule, ScheduleError};
pub use semantics::{ObjectState, StoreState};
pub use value::Value;
