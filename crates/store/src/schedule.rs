//! Schedules: visibility and arbitration orders over a history, with the
//! well-formedness conditions (S1)–(S3) of Section 3.

use std::fmt;

use crate::event::EventId;
use crate::history::History;
use crate::semantics::StoreState;

/// A binary relation over the events of a history, stored as a bit matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl Relation {
    /// Creates the empty relation over `n` events.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64).max(1);
        Relation { n, words_per_row, bits: vec![0; words_per_row * n] }
    }

    /// Number of events the relation ranges over.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the relation ranges over no events.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Relates `a` to `b`.
    pub fn insert(&mut self, a: EventId, b: EventId) {
        let (i, j) = (a.index(), b.index());
        self.bits[i * self.words_per_row + j / 64] |= 1 << (j % 64);
    }

    /// Whether `a` is related to `b`.
    pub fn contains(&self, a: EventId, b: EventId) -> bool {
        let (i, j) = (a.index(), b.index());
        self.bits[i * self.words_per_row + j / 64] & (1 << (j % 64)) != 0
    }

    /// All `b` with `a R b`.
    pub fn successors(&self, a: EventId) -> impl Iterator<Item = EventId> + '_ {
        let row = &self.bits[a.index() * self.words_per_row..][..self.words_per_row];
        row.iter().enumerate().flat_map(|(w, &word)| {
            (0..64).filter(move |b| word & (1 << b) != 0).map(move |b| EventId((w * 64 + b) as u32))
        })
    }

    /// All `a` with `a R b` (column scan).
    pub fn predecessors(&self, b: EventId) -> impl Iterator<Item = EventId> + '_ {
        (0..self.n)
            .map(|i| EventId(i as u32))
            .filter(move |&a| self.contains(a, b))
    }

    /// Computes the transitive closure in place (Floyd–Warshall on bit rows).
    pub fn close_transitively(&mut self) {
        for k in 0..self.n {
            for i in 0..self.n {
                if self.bits[i * self.words_per_row + k / 64] & (1 << (k % 64)) != 0 {
                    let (head, tail) = self.bits.split_at_mut(i.max(k) * self.words_per_row);
                    let (row_i, row_k) = if i < k {
                        (&mut head[i * self.words_per_row..][..self.words_per_row],
                         &tail[..self.words_per_row])
                    } else if i > k {
                        (&mut tail[..self.words_per_row],
                         &head[k * self.words_per_row..][..self.words_per_row])
                    } else {
                        continue;
                    };
                    for w in 0..row_i.len() {
                        row_i[w] |= row_k[w];
                    }
                }
            }
        }
    }

    /// Whether the relation is transitive.
    pub fn is_transitive(&self) -> bool {
        let mut closed = self.clone();
        closed.close_transitively();
        closed == *self
    }

    /// Union with another relation (same size).
    pub fn union_with(&mut self, other: &Relation) {
        assert_eq!(self.n, other.n);
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= *b;
        }
    }
}

/// Violations of the schedule well-formedness conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The arbitration order is not a permutation of the history's events.
    ArNotTotal,
    /// Visibility relates a pair not related by arbitration (`vı ⊄ ar`).
    VisNotInAr(EventId, EventId),
    /// (S1): some event's visible prefix is illegal.
    Illegal {
        /// The event whose outcome is inconsistent.
        event: EventId,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// (S2): session order is not contained in visibility.
    SoNotInVis(EventId, EventId),
    /// (S2): visibility is not transitively closed.
    VisNotTransitive(EventId, EventId, EventId),
    /// (S3): atomic visibility violated between two transactions.
    NotAtomic(EventId, EventId, EventId, EventId),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::ArNotTotal => write!(f, "arbitration order is not total"),
            ScheduleError::VisNotInAr(a, b) => write!(f, "visibility {a}→{b} not in arbitration"),
            ScheduleError::Illegal { event, detail } => write!(f, "event {event} illegal: {detail}"),
            ScheduleError::SoNotInVis(a, b) => write!(f, "session order {a}→{b} not visible"),
            ScheduleError::VisNotTransitive(a, b, c) => {
                write!(f, "visibility not transitive: {a}→{b}→{c}")
            }
            ScheduleError::NotAtomic(e, e2, g, g2) => {
                write!(f, "atomic visibility violated: {e}→{e2} but not {g}→{g2}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A schedule `S = (vı, ar)` for a history: a strict total arbitration
/// order and a visibility relation contained in it.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Events in arbitration order.
    ar_order: Vec<EventId>,
    /// Rank of each event in `ar_order`.
    rank: Vec<usize>,
    /// The visibility relation.
    vis: Relation,
}

impl Schedule {
    /// Creates a schedule from an arbitration order (a permutation of the
    /// history's events) and a visibility relation.
    ///
    /// Only the basic shape is checked here (`ar` total, `vı ⊆ ar`); use
    /// [`Schedule::check`] / [`Schedule::check_pre`] for (S1)–(S3).
    pub fn new(
        history: &History,
        ar_order: Vec<EventId>,
        vis: Relation,
    ) -> Result<Self, ScheduleError> {
        let n = history.len();
        if ar_order.len() != n {
            return Err(ScheduleError::ArNotTotal);
        }
        let mut rank = vec![usize::MAX; n];
        for (r, &e) in ar_order.iter().enumerate() {
            if rank[e.index()] != usize::MAX {
                return Err(ScheduleError::ArNotTotal);
            }
            rank[e.index()] = r;
        }
        let sched = Schedule { ar_order, rank, vis };
        for a in (0..n).map(|i| EventId(i as u32)) {
            for b in sched.vis.successors(a) {
                if !sched.ar(a, b) {
                    return Err(ScheduleError::VisNotInAr(a, b));
                }
            }
        }
        Ok(sched)
    }

    /// The *serial* schedule induced by executing whole transactions in the
    /// given order (`vı = ar`).
    ///
    /// # Panics
    ///
    /// Panics if `tx_order` is not a permutation of the history's
    /// transactions.
    pub fn serial(history: &History, tx_order: &[crate::history::TxId]) -> Self {
        assert_eq!(tx_order.len(), history.transactions().count());
        let mut ar_order = Vec::with_capacity(history.len());
        for &t in tx_order {
            ar_order.extend(history.transaction(t).events.iter().copied());
        }
        let n = history.len();
        let mut rank = vec![usize::MAX; n];
        for (r, &e) in ar_order.iter().enumerate() {
            rank[e.index()] = r;
        }
        let mut vis = Relation::new(n);
        for &a in &ar_order {
            for &b in &ar_order {
                if rank[a.index()] < rank[b.index()] {
                    vis.insert(a, b);
                }
            }
        }
        Schedule { ar_order, rank, vis }
    }

    /// Low-level constructor from raw parts, without validating against a
    /// history. Used for schedule *restrictions* (Theorem 2), whose shape
    /// is preserved by construction.
    ///
    /// # Panics
    ///
    /// Panics if `ar_order` contains duplicate or out-of-range events.
    pub fn from_parts(ar_order: Vec<EventId>, vis: Relation) -> Self {
        let n = ar_order.len();
        let mut rank = vec![usize::MAX; n];
        for (r, &e) in ar_order.iter().enumerate() {
            assert!(e.index() < n, "event out of range");
            assert_eq!(rank[e.index()], usize::MAX, "duplicate event in ar order");
            rank[e.index()] = r;
        }
        Schedule { ar_order, rank, vis }
    }

    /// Whether `a ar→ b`.
    pub fn ar(&self, a: EventId, b: EventId) -> bool {
        self.rank[a.index()] < self.rank[b.index()]
    }

    /// Whether `a vı→ b`.
    pub fn vis(&self, a: EventId, b: EventId) -> bool {
        self.vis.contains(a, b)
    }

    /// The events in arbitration order.
    pub fn ar_order(&self) -> &[EventId] {
        &self.ar_order
    }

    /// The visibility relation.
    pub fn visibility(&self) -> &Relation {
        &self.vis
    }

    /// Whether the schedule is serial (`vı = ar`).
    pub fn is_serial(&self) -> bool {
        let n = self.ar_order.len();
        for i in 0..n {
            for j in 0..n {
                let (a, b) = (EventId(i as u32), EventId(j as u32));
                if self.ar(a, b) != self.vis(a, b) {
                    return false;
                }
            }
        }
        true
    }

    /// Checks the *pre-schedule* conditions (S2) and (S3) — everything
    /// except legality. Abstract-history concretizations are only required
    /// to possess pre-schedules (Section 5).
    pub fn check_pre(&self, history: &History) -> Result<(), ScheduleError> {
        let n = history.len();
        let ids = || (0..n).map(|i| EventId(i as u32));
        // (S2a) so ⊆ vı
        for (a, b) in history.so_pairs() {
            if !self.vis(a, b) {
                return Err(ScheduleError::SoNotInVis(a, b));
            }
        }
        // (S2b) vı transitive (together with (S2a) this gives vı = (so ∪ vı)+).
        for a in ids() {
            for b in self.vis.successors(a) {
                for c in self.vis.successors(b) {
                    if !self.vis(a, c) {
                        return Err(ScheduleError::VisNotTransitive(a, b, c));
                    }
                }
            }
        }
        // (S3) atomic visibility for vı and ar.
        for s in history.transactions() {
            for t in history.transactions() {
                if s.id == t.id {
                    continue;
                }
                let (e0, f0) = (s.events[0], t.events[0]);
                let vis0 = self.vis(e0, f0);
                let ar0 = self.ar(e0, f0);
                for &e in &s.events {
                    for &f in &t.events {
                        if self.vis(e, f) != vis0 {
                            return Err(ScheduleError::NotAtomic(e0, f0, e, f));
                        }
                        if self.ar(e, f) != ar0 {
                            return Err(ScheduleError::NotAtomic(e0, f0, e, f));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks the full schedule conditions (S1)–(S3).
    pub fn check(&self, history: &History) -> Result<(), ScheduleError> {
        self.check_pre(history)?;
        // (S1): for every event e, ar restricted to vı⁻¹(e) ∪ {e} is legal.
        // Since queries do not modify the store, only the *updates* of the
        // visible prefix constrain e's outcome; visible queries were already
        // checked against their own visible sets when e ranged over them.
        for e in (0..history.len()).map(|i| EventId(i as u32)) {
            let mut visible: Vec<EventId> = self
                .vis
                .predecessors(e)
                .filter(|&x| history.event(x).is_update())
                .collect();
            visible.sort_by_key(|x| self.rank[x.index()]);
            visible.push(e);
            let mut st = StoreState::new();
            for (i, &x) in visible.iter().enumerate() {
                if let Err(err) = st.step(i, history.event(x)) {
                    return Err(ScheduleError::Illegal { event: e, detail: err.to_string() });
                }
            }
        }
        Ok(())
    }
}

/// Decides serializability of a small history by enumerating transaction
/// orders (reference implementation; exponential, test-only scale).
///
/// A history is serializable iff it possesses a serial schedule: a total
/// order of its transactions, compatible with the session order, whose
/// serial execution is legal.
pub fn serializable_by_enumeration(history: &History) -> bool {
    let txs: Vec<_> = history.transactions().map(|t| t.id).collect();
    let mut perm = txs.clone();
    permute(history, &mut perm, 0)
}

fn permute(history: &History, perm: &mut Vec<crate::history::TxId>, k: usize) -> bool {
    if k == perm.len() {
        // Session order must be respected.
        let mut pos = vec![0usize; perm.len()];
        for (i, &t) in perm.iter().enumerate() {
            pos[t.index()] = i;
        }
        for s in history.transactions() {
            for t in history.transactions() {
                if s.session == t.session
                    && s.id != t.id
                    && history.session_position(s.events[0]) < history.session_position(t.events[0])
                    && pos[s.id.index()] > pos[t.id.index()]
                {
                    return false;
                }
            }
        }
        let sched = Schedule::serial(history, perm);
        return sched.check(history).is_ok();
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        if permute(history, perm, k + 1) {
            perm.swap(k, i);
            return true;
        }
        perm.swap(k, i);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;
    use crate::op::Operation;
    use crate::value::Value;

    /// The non-serializable execution of Figure 1c1:
    /// session 0: put("A",1); get("B"):0   session 1: put("B",2); get("A"):0
    fn figure1c1() -> History {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        let t0 = b.begin(s0);
        b.push(t0, Operation::map_put("M", Value::str("A"), Value::int(1)));
        let t1 = b.begin(s0);
        b.push(t1, Operation::map_get("M", Value::str("B"), Value::Unit));
        let t2 = b.begin(s1);
        b.push(t2, Operation::map_put("M", Value::str("B"), Value::int(2)));
        let t3 = b.begin(s1);
        b.push(t3, Operation::map_get("M", Value::str("A"), Value::Unit));
        b.finish()
    }

    /// The serializable execution of Figure 1c4:
    /// session 0: put("A",1); get("A"):1   session 1: put("B",2); get("B"):2
    fn figure1c4() -> History {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        let t0 = b.begin(s0);
        b.push(t0, Operation::map_put("M", Value::str("A"), Value::int(1)));
        let t1 = b.begin(s0);
        b.push(t1, Operation::map_get("M", Value::str("A"), Value::int(1)));
        let t2 = b.begin(s1);
        b.push(t2, Operation::map_put("M", Value::str("B"), Value::int(2)));
        let t3 = b.begin(s1);
        b.push(t3, Operation::map_get("M", Value::str("B"), Value::int(2)));
        b.finish()
    }

    #[test]
    fn figure1c1_is_not_serializable() {
        assert!(!serializable_by_enumeration(&figure1c1()));
    }

    #[test]
    fn figure1c4_is_serializable() {
        assert!(serializable_by_enumeration(&figure1c4()));
    }

    #[test]
    fn figure1c1_has_a_causal_schedule() {
        // Each session sees only its own events: a valid causally-consistent
        // schedule that is not serial.
        let h = figure1c1();
        let ids: Vec<_> = (0..4).map(EventId).collect();
        let mut vis = Relation::new(4);
        vis.insert(ids[0], ids[1]);
        vis.insert(ids[2], ids[3]);
        let sched = Schedule::new(&h, vec![ids[0], ids[2], ids[1], ids[3]], vis).unwrap();
        sched.check(&h).unwrap();
        assert!(!sched.is_serial());
    }

    #[test]
    fn serial_schedule_satisfies_all_conditions() {
        let h = figure1c4();
        let order: Vec<_> = h.transactions().map(|t| t.id).collect();
        let sched = Schedule::serial(&h, &order);
        sched.check(&h).unwrap();
        assert!(sched.is_serial());
    }

    #[test]
    fn s1_catches_wrong_return_value() {
        let h = figure1c1();
        // Make everything visible to everything later: then get("A") must
        // return 1, not 0.
        let ids: Vec<_> = (0..4).map(EventId).collect();
        let order = vec![ids[0], ids[1], ids[2], ids[3]];
        let mut vis = Relation::new(4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                vis.insert(ids[i], ids[j]);
            }
        }
        let sched = Schedule::new(&h, order, vis).unwrap();
        let err = sched.check(&h).unwrap_err();
        assert!(matches!(err, ScheduleError::Illegal { .. }));
    }

    #[test]
    fn s2_requires_session_visibility() {
        let h = figure1c1();
        let ids: Vec<_> = (0..4).map(EventId).collect();
        let vis = Relation::new(4); // nothing visible at all
        let sched = Schedule::new(&h, vec![ids[0], ids[1], ids[2], ids[3]], vis).unwrap();
        let err = sched.check(&h).unwrap_err();
        assert!(matches!(err, ScheduleError::SoNotInVis(_, _)));
    }

    #[test]
    fn s3_catches_torn_transactions() {
        // One transaction with two events, a second transaction seeing only
        // one of them.
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        let t0 = b.begin(s0);
        b.push(t0, Operation::map_put("M", Value::str("A"), Value::int(1)));
        b.push(t0, Operation::map_put("M", Value::str("B"), Value::int(1)));
        let t1 = b.begin(s1);
        b.push(t1, Operation::map_get("M", Value::str("A"), Value::int(1)));
        let h = b.finish();
        let ids: Vec<_> = (0..3).map(EventId).collect();
        let mut vis = Relation::new(3);
        vis.insert(ids[0], ids[1]);
        vis.insert(ids[0], ids[2]); // sees first write...
        // ...but not the second: torn.
        let sched = Schedule::new(&h, vec![ids[0], ids[1], ids[2]], vis).unwrap();
        let err = sched.check(&h).unwrap_err();
        assert!(matches!(err, ScheduleError::NotAtomic(..)));
    }

    #[test]
    fn vis_must_be_within_ar() {
        let h = figure1c4();
        let ids: Vec<_> = (0..4).map(EventId).collect();
        let mut vis = Relation::new(4);
        vis.insert(ids[3], ids[0]);
        assert!(matches!(
            Schedule::new(&h, vec![ids[0], ids[1], ids[2], ids[3]], vis),
            Err(ScheduleError::VisNotInAr(_, _))
        ));
    }

    #[test]
    fn relation_closure() {
        let mut r = Relation::new(3);
        r.insert(EventId(0), EventId(1));
        r.insert(EventId(1), EventId(2));
        assert!(!r.is_transitive());
        r.close_transitively();
        assert!(r.contains(EventId(0), EventId(2)));
        assert!(r.is_transitive());
    }

    #[test]
    fn relation_successors_predecessors() {
        let mut r = Relation::new(70); // spans multiple words
        r.insert(EventId(0), EventId(65));
        r.insert(EventId(3), EventId(65));
        assert_eq!(r.successors(EventId(0)).collect::<Vec<_>>(), vec![EventId(65)]);
        assert_eq!(
            r.predecessors(EventId(65)).collect::<Vec<_>>(),
            vec![EventId(0), EventId(3)]
        );
    }
}
