//! An executable multi-replica causally-consistent store simulator.
//!
//! The simulator produces histories together with legal schedules by
//! construction:
//!
//! * transactions execute against a single replica and observe a causally
//!   closed set of previously committed transactions (plus their own
//!   session's past — the session guarantee), giving (S2);
//! * transactions apply and replicate as indivisible batches, giving (S3);
//! * query results are computed by replaying the visible updates in
//!   arbitration order, giving (S1);
//! * arbitration is a global commit counter, so `vı ⊆ ar` holds because a
//!   transaction can only observe transactions that committed earlier.
//!
//! Delivery between replicas is asynchronous and *causal*: a transaction is
//! applied at a remote replica only once everything it observed has been
//! applied there. The driver (e.g. the dynamic analyzer) controls delivery
//! timing, which is what surfaces non-serializable behaviors.
//!
//! # Example
//!
//! ```
//! use c4_store::sim::CausalSim;
//! use c4_store::{op::OpKind, Value};
//!
//! let mut sim = CausalSim::new(2);
//! let a = sim.session(0);
//! let b = sim.session(1);
//!
//! sim.begin(a);
//! sim.update(a, "M", OpKind::MapPut, vec![Value::str("A"), Value::int(1)]);
//! sim.commit(a);
//!
//! // Replica 1 has not received the put yet:
//! sim.begin(b);
//! let v = sim.query(b, "M", OpKind::MapGet, vec![Value::str("A")]);
//! sim.commit(b);
//! assert_eq!(v, Value::Unit);
//!
//! sim.deliver_all();
//! let (history, schedule) = sim.into_history();
//! schedule.check(&history).unwrap();
//! ```

use std::collections::HashSet;

use crate::event::EventId;
use crate::history::{History, HistoryBuilder, SessionId, TxId};
use crate::op::{ObjectName, OpKind, Operation};
use crate::schedule::{Relation, Schedule};
use crate::semantics::StoreState;
use crate::value::{RowId, Value};

/// Handle to a client session of the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimSession(usize);

/// Index of a replica.
pub type ReplicaId = usize;

#[derive(Debug, Clone)]
struct CommittedTx {
    /// Events of the transaction (indices into `events`).
    events: Vec<usize>,
    /// Transactions visible when this one executed (causally closed).
    visible: HashSet<usize>,
}

#[derive(Debug, Clone)]
struct SessionState {
    replica: ReplicaId,
    /// Committed transactions of this session, in order.
    committed: Vec<usize>,
    /// Open transaction buffer: (ops, visible set at begin).
    open: Option<OpenTx>,
}

#[derive(Debug, Clone)]
struct OpenTx {
    ops: Vec<Operation>,
    visible: HashSet<usize>,
}

#[derive(Debug, Clone, Default)]
struct Replica {
    /// Committed transactions applied at this replica (causally closed).
    applied: HashSet<usize>,
}

/// A pending remote delivery: transaction `tx` towards replica `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingDelivery {
    /// The global index of the committed transaction.
    pub tx: usize,
    /// The destination replica.
    pub to: ReplicaId,
}

/// The multi-replica causal store simulator.
///
/// The simulator is `Clone`: branching explorers (the `c4-mc` stateless
/// model checker) fork the full store state at every scheduling choice.
#[derive(Debug, Clone)]
pub struct CausalSim {
    replicas: Vec<Replica>,
    sessions: Vec<SessionState>,
    /// Committed transactions in commit (= arbitration) order.
    committed: Vec<CommittedTx>,
    /// All events (operations of committed and open transactions), with the
    /// op of event i at `events[i]`; queries carry their return value.
    events: Vec<Operation>,
    pending: Vec<PendingDelivery>,
    next_row: u64,
}

impl CausalSim {
    /// Creates a simulator with the given number of replicas.
    ///
    /// # Panics
    ///
    /// Panics if `replica_count` is zero.
    pub fn new(replica_count: usize) -> Self {
        assert!(replica_count > 0, "need at least one replica");
        CausalSim {
            replicas: vec![Replica::default(); replica_count],
            sessions: Vec::new(),
            committed: Vec::new(),
            events: Vec::new(),
            pending: Vec::new(),
            next_row: 0,
        }
    }

    /// Opens a new session pinned to the given replica.
    ///
    /// # Panics
    ///
    /// Panics if the replica does not exist.
    pub fn session(&mut self, replica: ReplicaId) -> SimSession {
        assert!(replica < self.replicas.len(), "no such replica");
        self.sessions.push(SessionState { replica, committed: Vec::new(), open: None });
        SimSession(self.sessions.len() - 1)
    }

    /// Generates a fresh unique row identity.
    pub fn fresh_row(&mut self) -> RowId {
        let id = RowId(self.next_row);
        self.next_row += 1;
        id
    }

    /// Begins a transaction in the session. Its snapshot is the replica's
    /// applied set plus the session's own past (closed under causality by
    /// construction).
    ///
    /// # Panics
    ///
    /// Panics if the session already has an open transaction.
    pub fn begin(&mut self, s: SimSession) {
        let sess = &mut self.sessions[s.0];
        assert!(sess.open.is_none(), "transaction already open");
        let mut visible = self.replicas[sess.replica].applied.clone();
        visible.extend(sess.committed.iter().copied());
        // Close under causal predecessors (session past may not be applied
        // at the replica yet if the session migrated).
        let mut stack: Vec<usize> = visible.iter().copied().collect();
        while let Some(t) = stack.pop() {
            for &p in &self.committed[t].visible {
                if visible.insert(p) {
                    stack.push(p);
                }
            }
        }
        sess.open = Some(OpenTx { ops: Vec::new(), visible });
    }

    /// Issues an update inside the session's open transaction.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open or the operation is not an update.
    pub fn update(
        &mut self,
        s: SimSession,
        object: impl Into<ObjectName>,
        kind: OpKind,
        args: Vec<Value>,
    ) {
        let op = Operation::new(object, kind, args, None);
        let open = self.sessions[s.0].open.as_mut().expect("no open transaction");
        open.ops.push(op);
    }

    /// Issues a query inside the session's open transaction and returns the
    /// value the store yields: the replay of the visible updates in
    /// arbitration order, followed by the transaction's own buffered
    /// updates (read-your-writes).
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open or the operation is not a query.
    pub fn query(
        &mut self,
        s: SimSession,
        object: impl Into<ObjectName>,
        kind: OpKind,
        args: Vec<Value>,
    ) -> Value {
        let open = self.sessions[s.0].open.as_ref().expect("no open transaction");
        let mut st = StoreState::new();
        let mut vis: Vec<usize> = open.visible.iter().copied().collect();
        vis.sort_unstable(); // commit order = arbitration order
        for t in vis {
            for &e in &self.committed[t].events {
                if self.events[e].is_update() {
                    st.apply(&self.events[e]);
                }
            }
        }
        for op in &open.ops {
            if op.is_update() {
                st.apply(op);
            }
        }
        let probe = Operation::new(object, kind.clone(), args.clone(), Some(Value::Unit));
        let ret = st.eval(&probe);
        let op = Operation::new(probe.object.clone(), kind, args, Some(ret.clone()));
        self.sessions[s.0].open.as_mut().unwrap().ops.push(op);
        ret
    }

    /// Commits the session's open transaction: it receives the next
    /// arbitration stamp, is applied at the session's replica, and is
    /// queued for delivery to all other replicas.
    ///
    /// Returns the committed transaction's global index.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is open.
    pub fn commit(&mut self, s: SimSession) -> usize {
        let replica = self.sessions[s.0].replica;
        let open = self.sessions[s.0].open.take().expect("no open transaction");
        let idx = self.committed.len();
        let mut event_ids = Vec::with_capacity(open.ops.len());
        for op in open.ops {
            event_ids.push(self.events.len());
            self.events.push(op);
        }
        self.committed.push(CommittedTx { events: event_ids, visible: open.visible });
        self.sessions[s.0].committed.push(idx);
        self.replicas[replica].applied.insert(idx);
        for to in 0..self.replicas.len() {
            if to != replica {
                self.pending.push(PendingDelivery { tx: idx, to });
            }
        }
        idx
    }

    /// Moves a session to another replica (its causal past travels with it).
    pub fn migrate(&mut self, s: SimSession, to: ReplicaId) {
        assert!(to < self.replicas.len(), "no such replica");
        self.sessions[s.0].replica = to;
    }

    /// The deliveries currently deliverable (their causal dependencies are
    /// satisfied at the destination).
    pub fn deliverable(&self) -> Vec<PendingDelivery> {
        self.pending
            .iter()
            .copied()
            .filter(|d| {
                self.committed[d.tx]
                    .visible
                    .iter()
                    .all(|p| self.replicas[d.to].applied.contains(p))
            })
            .collect()
    }

    /// Delivers one specific pending delivery.
    ///
    /// Returns `false` if the delivery is not pending or not yet
    /// deliverable under causal delivery.
    pub fn deliver(&mut self, d: PendingDelivery) -> bool {
        let Some(pos) = self.pending.iter().position(|&p| p == d) else {
            return false;
        };
        let deps_ok = self.committed[d.tx]
            .visible
            .iter()
            .all(|p| self.replicas[d.to].applied.contains(p));
        if !deps_ok {
            return false;
        }
        self.pending.swap_remove(pos);
        self.replicas[d.to].applied.insert(d.tx);
        true
    }

    /// Delivers everything, in causal order.
    pub fn deliver_all(&mut self) {
        loop {
            let ds = self.deliverable();
            if ds.is_empty() {
                break;
            }
            for d in ds {
                self.deliver(d);
            }
        }
        assert!(self.pending.is_empty(), "causal delivery wedged");
    }

    /// Extracts the history and its (legal, causally-consistent) schedule.
    ///
    /// # Panics
    ///
    /// Panics if any session still has an open transaction.
    pub fn into_history(self) -> (History, Schedule) {
        for sess in &self.sessions {
            assert!(sess.open.is_none(), "open transaction at extraction");
        }
        let mut b = HistoryBuilder::new();
        let session_ids: Vec<SessionId> = self.sessions.iter().map(|_| b.session()).collect();
        // Build per-session, transactions in each session's order; record
        // the EventId assigned to each simulator event.
        let mut event_map: Vec<Option<EventId>> = vec![None; self.events.len()];
        let mut tx_map: Vec<Option<TxId>> = vec![None; self.committed.len()];
        for (si, sess) in self.sessions.iter().enumerate() {
            for &t in &sess.committed {
                let tx = b.begin(session_ids[si]);
                tx_map[t] = Some(tx);
                for &e in &self.committed[t].events {
                    event_map[e] = Some(b.push(tx, self.events[e].clone()));
                }
            }
        }
        let history = b.finish();
        let n = history.len();
        // Arbitration: commit order over transactions, session position
        // within a transaction.
        let mut ar_order: Vec<EventId> = Vec::with_capacity(n);
        for (t, ct) in self.committed.iter().enumerate() {
            let _ = t;
            for &e in &ct.events {
                ar_order.push(event_map[e].expect("event committed"));
            }
        }
        // Visibility: tx-level visible sets, plus so within sessions (which
        // is already included because a session's past is in `visible`),
        // plus intra-transaction program order.
        let mut vis = Relation::new(n);
        for (t, ct) in self.committed.iter().enumerate() {
            for &v in &ct.visible {
                if v == t {
                    continue;
                }
                for &ve in &self.committed[v].events {
                    for &te in &ct.events {
                        vis.insert(event_map[ve].unwrap(), event_map[te].unwrap());
                    }
                }
            }
            for (i, &e) in ct.events.iter().enumerate() {
                for &f in &ct.events[i + 1..] {
                    vis.insert(event_map[e].unwrap(), event_map[f].unwrap());
                }
            }
        }
        let schedule = Schedule::new(&history, ar_order, vis).expect("simulator schedule shape");
        (history, schedule)
    }

    /// Number of committed transactions so far.
    pub fn committed_count(&self) -> usize {
        self.committed.len()
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The replica a session is currently pinned to.
    pub fn session_replica(&self, s: SimSession) -> ReplicaId {
        self.sessions[s.0].replica
    }

    /// The operations of a committed transaction, in program order.
    ///
    /// # Panics
    ///
    /// Panics if the transaction index is out of range.
    pub fn committed_ops(&self, tx: usize) -> impl Iterator<Item = &Operation> {
        self.committed[tx].events.iter().map(|&e| &self.events[e])
    }

    /// The names of the objects a committed transaction touches.
    pub fn committed_objects(&self, tx: usize) -> std::collections::BTreeSet<ObjectName> {
        self.committed_ops(tx).map(|op| op.object.clone()).collect()
    }

    /// The global indices of the transactions visible to a committed
    /// transaction (its causal past, excluding itself).
    pub fn committed_visible(&self, tx: usize) -> impl Iterator<Item = usize> + '_ {
        self.committed[tx].visible.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delayed_delivery_reproduces_figure1c1() {
        let mut sim = CausalSim::new(2);
        let a = sim.session(0);
        let b = sim.session(1);
        sim.begin(a);
        sim.update(a, "M", OpKind::MapPut, vec![Value::str("A"), Value::int(1)]);
        sim.commit(a);
        sim.begin(b);
        sim.update(b, "M", OpKind::MapPut, vec![Value::str("B"), Value::int(2)]);
        sim.commit(b);
        // No delivery: each session reads the other's key and misses it.
        sim.begin(a);
        let va = sim.query(a, "M", OpKind::MapGet, vec![Value::str("B")]);
        sim.commit(a);
        sim.begin(b);
        let vb = sim.query(b, "M", OpKind::MapGet, vec![Value::str("A")]);
        sim.commit(b);
        assert_eq!(va, Value::Unit);
        assert_eq!(vb, Value::Unit);
        sim.deliver_all();
        let (h, s) = sim.into_history();
        s.check(&h).unwrap();
        assert!(!crate::schedule::serializable_by_enumeration(&h));
    }

    #[test]
    fn read_your_writes_within_transaction() {
        let mut sim = CausalSim::new(1);
        let a = sim.session(0);
        sim.begin(a);
        sim.update(a, "C", OpKind::CtrInc, vec![Value::int(5)]);
        let v = sim.query(a, "C", OpKind::CtrGet, vec![]);
        assert_eq!(v, Value::int(5));
        sim.commit(a);
        let (h, s) = sim.into_history();
        s.check(&h).unwrap();
    }

    #[test]
    fn session_reads_its_own_past_after_migration() {
        let mut sim = CausalSim::new(2);
        let a = sim.session(0);
        sim.begin(a);
        sim.update(a, "R", OpKind::RegPut, vec![Value::int(9)]);
        sim.commit(a);
        sim.migrate(a, 1);
        sim.begin(a);
        let v = sim.query(a, "R", OpKind::RegGet, vec![]);
        sim.commit(a);
        assert_eq!(v, Value::int(9));
        sim.deliver_all();
        let (h, s) = sim.into_history();
        s.check(&h).unwrap();
    }

    #[test]
    fn causal_delivery_orders_dependent_transactions() {
        let mut sim = CausalSim::new(3);
        let a = sim.session(0);
        sim.begin(a);
        sim.update(a, "R", OpKind::RegPut, vec![Value::int(1)]);
        let t0 = sim.commit(a);
        // Session b at replica 1 sees t0 after delivery and writes t1.
        for d in sim.deliverable() {
            if d.to == 1 {
                sim.deliver(d);
            }
        }
        let b = sim.session(1);
        sim.begin(b);
        let _ = sim.query(b, "R", OpKind::RegGet, vec![]);
        sim.update(b, "R", OpKind::RegPut, vec![Value::int(2)]);
        let t1 = sim.commit(b);
        // t1 depends on t0; replica 2 cannot receive t1 before t0.
        let d_t1 = PendingDelivery { tx: t1, to: 2 };
        assert!(!sim.deliver(d_t1));
        assert!(sim.deliver(PendingDelivery { tx: t0, to: 2 }));
        assert!(sim.deliver(d_t1));
        sim.deliver_all();
        let (h, s) = sim.into_history();
        s.check(&h).unwrap();
    }

    #[test]
    fn fresh_rows_are_unique() {
        let mut sim = CausalSim::new(1);
        let r1 = sim.fresh_row();
        let r2 = sim.fresh_row();
        assert_ne!(r1, r2);
    }

    #[test]
    fn schedules_from_random_runs_are_always_legal() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..25 {
            let mut sim = CausalSim::new(3);
            let sessions: Vec<_> = (0..3).map(|r| sim.session(r)).collect();
            for step in 0..20 {
                let s = sessions[rng.gen_range(0..sessions.len())];
                sim.begin(s);
                if rng.gen_bool(0.6) {
                    sim.update(
                        s,
                        "M",
                        OpKind::MapPut,
                        vec![Value::int(rng.gen_range(0..3)), Value::int(step)],
                    );
                } else {
                    let _ = sim.query(s, "M", OpKind::MapGet, vec![Value::int(rng.gen_range(0..3))]);
                }
                sim.commit(s);
                // Randomly deliver some messages.
                for d in sim.deliverable() {
                    if rng.gen_bool(0.5) {
                        sim.deliver(d);
                    }
                }
            }
            sim.deliver_all();
            let (h, sched) = sim.into_history();
            sched.check(&h).unwrap();
        }
    }
}
