//! Sequential semantics of the store operations.
//!
//! The paper builds on the operations' *sequential semantics*, specified as
//! a prefix-closed set of legal event sequences. We realize that
//! specification operationally: a [`StoreState`] applies updates in order
//! and evaluates queries; a sequence is legal iff every query returns
//! exactly what the state evaluation yields at its position.

use std::collections::{HashMap, HashSet};

use crate::event::Event;
use crate::op::{FieldName, ObjectName, OpKind, Operation};
use crate::value::Value;

/// State of a single named object.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ObjectState {
    /// Initial, untouched object; behaves as the data-type default.
    #[default]
    Initial,
    /// Register state.
    Register(Value),
    /// Counter state.
    Counter(i64),
    /// Set state.
    Set(HashSet<Value>),
    /// Map state.
    Map(HashMap<Value, Value>),
    /// Log state: appended values in arbitration order.
    Log(Vec<Value>),
    /// Table state: the present rows and their field contents.
    ///
    /// Field contents persist per `(row, field)`; deleting a row clears its
    /// fields (so a later field update on the same row *partially revives*
    /// the record — the semantics responsible for bug categories 3 and 4 in
    /// Section 9.5 of the paper).
    Table(TableState),
}

/// State of a table object.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TableState {
    /// Rows currently present.
    pub present: HashSet<Value>,
    /// Register-valued field contents.
    pub regs: HashMap<(Value, FieldName), Value>,
    /// Set-valued field contents.
    pub sets: HashMap<(Value, FieldName), HashSet<Value>>,
}

/// The state of the whole store: one [`ObjectState`] per touched object.
#[derive(Debug, Clone, Default)]
pub struct StoreState {
    objects: HashMap<ObjectName, ObjectState>,
}

/// Error produced when replaying an illegal sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IllegalEvent {
    /// Index of the offending event within the replayed sequence.
    pub position: usize,
    /// The value the sequential semantics yields at that position.
    pub expected: Value,
    /// The value the event actually returned.
    pub actual: Value,
}

impl std::fmt::Display for IllegalEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "illegal event at position {}: query returned {} but sequential semantics yields {}",
            self.position, self.actual, self.expected
        )
    }
}

impl std::error::Error for IllegalEvent {}

impl StoreState {
    /// Creates the initial (empty) store state.
    pub fn new() -> Self {
        StoreState::default()
    }

    /// Applies an update operation to the state.
    ///
    /// # Panics
    ///
    /// Panics if `op` is a query, or if the object is used at two different
    /// data types within one replay.
    pub fn apply(&mut self, op: &Operation) {
        use OpKind::*;
        assert!(op.is_update(), "apply expects an update, got {op}");
        let entry = self.objects.entry(op.object.clone()).or_default();
        match &op.kind {
            RegPut => *entry = ObjectState::Register(op.args[0].clone()),
            CtrInc => {
                let c = match entry {
                    ObjectState::Initial => 0,
                    ObjectState::Counter(c) => *c,
                    other => panic!("type confusion on {}: {other:?} used as counter", op.object),
                };
                *entry = ObjectState::Counter(c + op.args[0].as_int().expect("inc amount"));
            }
            SetAdd | SetRemove => {
                let s = match entry {
                    ObjectState::Initial => {
                        *entry = ObjectState::Set(HashSet::new());
                        match entry {
                            ObjectState::Set(s) => s,
                            _ => unreachable!(),
                        }
                    }
                    ObjectState::Set(s) => s,
                    other => panic!("type confusion on {}: {other:?} used as set", op.object),
                };
                if matches!(op.kind, SetAdd) {
                    s.insert(op.args[0].clone());
                } else {
                    s.remove(&op.args[0]);
                }
            }
            LogAppend => {
                let l = match entry {
                    ObjectState::Initial => {
                        *entry = ObjectState::Log(Vec::new());
                        match entry {
                            ObjectState::Log(l) => l,
                            _ => unreachable!(),
                        }
                    }
                    ObjectState::Log(l) => l,
                    other => panic!("type confusion on {}: {other:?} used as log", op.object),
                };
                l.push(op.args[0].clone());
            }
            MapPut | MapRemove | MapCopy => {
                let m = match entry {
                    ObjectState::Initial => {
                        *entry = ObjectState::Map(HashMap::new());
                        match entry {
                            ObjectState::Map(m) => m,
                            _ => unreachable!(),
                        }
                    }
                    ObjectState::Map(m) => m,
                    other => panic!("type confusion on {}: {other:?} used as map", op.object),
                };
                match &op.kind {
                    MapPut => {
                        m.insert(op.args[0].clone(), op.args[1].clone());
                    }
                    MapRemove => {
                        m.remove(&op.args[0]);
                    }
                    MapCopy => {
                        let v = m.get(&op.args[0]).cloned().unwrap_or_default();
                        m.insert(op.args[1].clone(), v);
                    }
                    _ => unreachable!(),
                }
            }
            TblAddRow | TblDeleteRow | FldSet(_) | FldAdd(_) | FldRemove(_) => {
                let t = match entry {
                    ObjectState::Initial => {
                        *entry = ObjectState::Table(TableState::default());
                        match entry {
                            ObjectState::Table(t) => t,
                            _ => unreachable!(),
                        }
                    }
                    ObjectState::Table(t) => t,
                    other => panic!("type confusion on {}: {other:?} used as table", op.object),
                };
                let row = op.args[0].clone();
                match &op.kind {
                    TblAddRow => {
                        t.present.insert(row);
                    }
                    TblDeleteRow => {
                        t.present.remove(&row);
                        t.regs.retain(|(r, _), _| *r != row);
                        t.sets.retain(|(r, _), _| *r != row);
                    }
                    FldSet(f) => {
                        t.present.insert(row.clone());
                        t.regs.insert((row, f.clone()), op.args[1].clone());
                    }
                    FldAdd(f) => {
                        t.present.insert(row.clone());
                        t.sets.entry((row, f.clone())).or_default().insert(op.args[1].clone());
                    }
                    FldRemove(f) => {
                        t.present.insert(row.clone());
                        t.sets.entry((row, f.clone())).or_default().remove(&op.args[1]);
                    }
                    _ => unreachable!(),
                }
            }
            _ => unreachable!("update kinds covered above"),
        }
    }

    /// Evaluates a query operation against the state, ignoring the recorded
    /// return value.
    ///
    /// # Panics
    ///
    /// Panics if `op` is an update or on data-type confusion.
    pub fn eval(&self, op: &Operation) -> Value {
        use OpKind::*;
        assert!(op.is_query(), "eval expects a query, got {op}");
        let state = self.objects.get(&op.object).unwrap_or(&ObjectState::Initial);
        match (&op.kind, state) {
            (RegGet, ObjectState::Initial) => Value::Unit,
            (RegGet, ObjectState::Register(v)) => v.clone(),
            (CtrGet, ObjectState::Initial) => Value::int(0),
            (CtrGet, ObjectState::Counter(c)) => Value::int(*c),
            (SetContains, ObjectState::Initial) => Value::bool(false),
            (SetContains, ObjectState::Set(s)) => Value::bool(s.contains(&op.args[0])),
            (SetSize, ObjectState::Initial) => Value::int(0),
            (SetSize, ObjectState::Set(s)) => Value::int(s.len() as i64),
            (MapGet, ObjectState::Initial) => Value::Unit,
            (MapGet, ObjectState::Map(m)) => m.get(&op.args[0]).cloned().unwrap_or_default(),
            (MapContains, ObjectState::Initial) => Value::bool(false),
            (MapContains, ObjectState::Map(m)) => Value::bool(m.contains_key(&op.args[0])),
            (MapSize, ObjectState::Initial) => Value::int(0),
            (MapSize, ObjectState::Map(m)) => Value::int(m.len() as i64),
            (LogLast, ObjectState::Initial) => Value::Unit,
            (LogLast, ObjectState::Log(l)) => l.last().cloned().unwrap_or_default(),
            (LogCount, ObjectState::Initial) => Value::int(0),
            (LogCount, ObjectState::Log(l)) => Value::int(l.len() as i64),
            (LogHas, ObjectState::Initial) => Value::bool(false),
            (LogHas, ObjectState::Log(l)) => Value::bool(l.contains(&op.args[0])),
            (TblContains, ObjectState::Initial) => Value::bool(false),
            (TblContains, ObjectState::Table(t)) => Value::bool(t.present.contains(&op.args[0])),
            (FldGet(_), ObjectState::Initial) => Value::Unit,
            (FldGet(f), ObjectState::Table(t)) => t
                .regs
                .get(&(op.args[0].clone(), f.clone()))
                .cloned()
                .unwrap_or_default(),
            (FldContains(_), ObjectState::Initial) => Value::bool(false),
            (FldContains(f), ObjectState::Table(t)) => Value::bool(
                t.sets
                    .get(&(op.args[0].clone(), f.clone()))
                    .is_some_and(|s| s.contains(&op.args[1])),
            ),
            (FldSize(_), ObjectState::Initial) => Value::int(0),
            (FldSize(f), ObjectState::Table(t)) => Value::int(
                t.sets.get(&(op.args[0].clone(), f.clone())).map_or(0, |s| s.len()) as i64,
            ),
            (k, s) => panic!("type confusion on {}: {s:?} queried with {k}", op.object),
        }
    }

    /// Replays one event: updates are applied; for queries, the recorded
    /// return value is checked against the evaluation.
    pub fn step(&mut self, position: usize, ev: &Event) -> Result<(), IllegalEvent> {
        if ev.is_update() {
            self.apply(&ev.op);
            Ok(())
        } else {
            let expected = self.eval(&ev.op);
            let actual = ev.op.ret.clone().expect("query has a return value");
            if expected == actual {
                Ok(())
            } else {
                Err(IllegalEvent { position, expected, actual })
            }
        }
    }
}

/// Whether a sequence of events is *legal*: every query returns what the
/// sequential semantics yields at its position (prefix-closedness is then
/// automatic).
pub fn is_legal<'a>(seq: impl IntoIterator<Item = &'a Event>) -> bool {
    check_legal(seq).is_ok()
}

/// Like [`is_legal`], but reports the first offending event.
pub fn check_legal<'a>(seq: impl IntoIterator<Item = &'a Event>) -> Result<(), IllegalEvent> {
    let mut st = StoreState::new();
    for (i, ev) in seq.into_iter().enumerate() {
        st.step(i, ev)?;
    }
    Ok(())
}

/// Whether two event sequences are *equivalent* with respect to a set of
/// probe queries: replaying both and evaluating each probe yields the same
/// results.
///
/// This is a sound, executable proxy for the paper's `α ≡ β` used by the
/// property tests that validate the algebraic specifications: the
/// specification claims `e f ≡ f e`, and the tests refute it by finding a
/// probe distinguishing the two orders.
pub fn equivalent_under_probes(
    alpha: &[&Operation],
    beta: &[&Operation],
    probes: &[Operation],
) -> bool {
    let run = |ops: &[&Operation]| {
        let mut st = StoreState::new();
        for op in ops {
            st.apply(op);
        }
        probes.iter().map(|p| st.eval(p)).collect::<Vec<_>>()
    };
    run(alpha) == run(beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;

    fn ev(id: u32, op: Operation) -> Event {
        Event { id: EventId(id), op }
    }

    #[test]
    fn register_put_get() {
        let seq = [
            ev(0, Operation::reg_put("R", Value::int(5))),
            ev(1, Operation::reg_get("R", Value::int(5))),
        ];
        assert!(is_legal(&seq));
        let bad = [
            ev(0, Operation::reg_put("R", Value::int(5))),
            ev(1, Operation::reg_get("R", Value::int(6))),
        ];
        let err = check_legal(&bad).unwrap_err();
        assert_eq!(err.position, 1);
        assert_eq!(err.expected, Value::int(5));
    }

    #[test]
    fn counter_accumulates() {
        let seq = [
            ev(0, Operation::ctr_inc("C", 2)),
            ev(1, Operation::ctr_inc("C", 3)),
            ev(2, Operation::ctr_get("C", 5)),
        ];
        assert!(is_legal(&seq));
    }

    #[test]
    fn initial_values() {
        assert!(is_legal(&[ev(0, Operation::map_get("M", Value::str("A"), Value::Unit))]));
        assert!(is_legal(&[ev(0, Operation::ctr_get("C", 0))]));
        assert!(is_legal(&[ev(0, Operation::set_contains("S", Value::int(1), false))]));
        assert!(is_legal(&[ev(0, Operation::tbl_contains("T", Value::row(0), false))]));
    }

    #[test]
    fn figure3_history_is_legal_in_ar_order() {
        // inc(a,1) get(a):1 put(a,2) get(a):2 — the schedule of Figure 3a.
        let seq = [
            ev(0, Operation::map_put("M", Value::str("a"), Value::int(0))),
            ev(1, Operation::ctr_inc("C", 1)),
            ev(2, Operation::ctr_get("C", 1)),
        ];
        assert!(is_legal(&seq));
    }

    #[test]
    fn map_copy_copies_current_value() {
        let mut st = StoreState::new();
        st.apply(&Operation::map_put("M", Value::str("a"), Value::int(1)));
        st.apply(&Operation::map_copy("M", Value::str("a"), Value::str("b")));
        st.apply(&Operation::map_put("M", Value::str("a"), Value::int(2)));
        assert_eq!(st.eval(&Operation::map_get("M", Value::str("b"), Value::Unit)), Value::int(1));
        assert_eq!(st.eval(&Operation::map_get("M", Value::str("a"), Value::Unit)), Value::int(2));
    }

    #[test]
    fn implicit_record_creation() {
        let mut st = StoreState::new();
        st.apply(&Operation::fld_add("Users", "flwrs", Value::str("A"), Value::str("B")));
        assert_eq!(
            st.eval(&Operation::tbl_contains("Users", Value::str("A"), false)),
            Value::bool(true)
        );
    }

    #[test]
    fn delete_then_set_partially_revives() {
        let mut st = StoreState::new();
        st.apply(&Operation::fld_set("Quiz", "question", Value::row(1), Value::str("Q")));
        st.apply(&Operation::fld_set("Quiz", "answer", Value::row(1), Value::str("A")));
        st.apply(&Operation::tbl_delete_row("Quiz", Value::row(1)));
        st.apply(&Operation::fld_set("Quiz", "question", Value::row(1), Value::str("Q2")));
        // Row revived with only the question field.
        assert_eq!(
            st.eval(&Operation::tbl_contains("Quiz", Value::row(1), false)),
            Value::bool(true)
        );
        assert_eq!(
            st.eval(&Operation::fld_get("Quiz", "answer", Value::row(1), Value::Unit)),
            Value::Unit
        );
        assert_eq!(
            st.eval(&Operation::fld_get("Quiz", "question", Value::row(1), Value::Unit)),
            Value::str("Q2")
        );
    }

    #[test]
    fn set_add_remove_and_size() {
        let mut st = StoreState::new();
        st.apply(&Operation::set_add("S", Value::int(1)));
        st.apply(&Operation::set_add("S", Value::int(2)));
        st.apply(&Operation::set_remove("S", Value::int(1)));
        assert_eq!(st.eval(&Operation::set_size("S", 0)), Value::int(1));
        assert_eq!(st.eval(&Operation::set_contains("S", Value::int(2), false)), Value::bool(true));
    }

    #[test]
    fn probe_equivalence_detects_noncommutativity() {
        let put1 = Operation::map_put("M", Value::str("a"), Value::int(1));
        let put2 = Operation::map_put("M", Value::str("a"), Value::int(2));
        let probe = Operation::map_get("M", Value::str("a"), Value::Unit);
        assert!(!equivalent_under_probes(&[&put1, &put2], &[&put2, &put1], &[probe.clone()]));
        let put_b = Operation::map_put("M", Value::str("b"), Value::int(2));
        assert!(equivalent_under_probes(
            &[&put1, &put_b],
            &[&put_b, &put1],
            std::slice::from_ref(&probe)
        ));
    }

    #[test]
    fn absorption_example_from_section_3() {
        // put(a,2) absorbs inc(a,1) — on a counter-as-map model we use the
        // map: put overwrites whatever the value was.
        let inc = Operation::ctr_inc("C", 1);
        let put = Operation::map_put("M", Value::str("a"), Value::int(2));
        // Different objects commute trivially:
        let probe_c = Operation::ctr_get("C", 0);
        let probe_m = Operation::map_get("M", Value::str("a"), Value::Unit);
        assert!(equivalent_under_probes(
            &[&inc, &put],
            &[&put, &inc],
            &[probe_c.clone(), probe_m.clone()]
        ));
    }
}

#[cfg(test)]
mod log_tests {
    use super::*;

    #[test]
    fn log_sequential_semantics() {
        let mut st = StoreState::new();
        st.apply(&Operation::log_append("L", Value::str("a")));
        st.apply(&Operation::log_append("L", Value::str("b")));
        assert_eq!(st.eval(&Operation::log_last("L", Value::Unit)), Value::str("b"));
        assert_eq!(st.eval(&Operation::log_count("L", 0)), Value::int(2));
        assert_eq!(st.eval(&Operation::log_has("L", Value::str("a"), false)), Value::bool(true));
        assert_eq!(st.eval(&Operation::log_has("L", Value::str("z"), false)), Value::bool(false));
    }

    #[test]
    fn log_initially_empty() {
        let st = StoreState::new();
        assert_eq!(st.eval(&Operation::log_last("L", Value::Unit)), Value::Unit);
        assert_eq!(st.eval(&Operation::log_count("L", 0)), Value::int(0));
    }
}
