//! The fixed alphabet of update and query operations.
//!
//! The store exposes a set of named objects, each of one of five high-level
//! replicated data types:
//!
//! * **register** — `put(v)` / `get():v`;
//! * **counter** — `inc(n)` / `ctr_get():n`;
//! * **set** — `add(e)`, `remove(e)` / `contains(e):b`, `size():n`;
//! * **map** — `put(k,v)`, `remove(k)`, `copy(k,k')` / `get(k):v`,
//!   `contains(k):b`, `size():n`;
//! * **table** — a keyed collection of records with named fields.
//!   Records are created *implicitly* by any field update (the semantics of
//!   Cassandra and TouchDevelop discussed in Section 8 of the paper),
//!   explicitly by `add_row(r)` which the store guarantees to supply with a
//!   fresh unique row identity, and destroyed by `delete_row(r)`. Fields are
//!   register-valued (`set`/`get`) or set-valued (`add`/`remove`/
//!   `contains`/`size`).
//!
//! `copy` is the one operation for which the *far* versions of
//! commutativity and absorption differ from the plain ones (Section 4.1);
//! it is included to exercise that distinction.

use std::fmt;
use std::sync::Arc;

/// An interned name for a store object or a table field.
///
/// Cheap to clone; compares by content.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Name(Arc<str>);

impl Name {
    /// Creates a name from a string.
    pub fn new(s: impl AsRef<str>) -> Self {
        Name(Arc::from(s.as_ref()))
    }

    /// Returns the name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        Name::new(s)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Name of a store object (a register, counter, set, map or table).
pub type ObjectName = Name;

/// Name of a table field.
pub type FieldName = Name;

/// The operation symbol: which method of which data type is invoked.
///
/// Field operations carry the (statically known) field name as part of the
/// symbol, mirroring how front ends see `Quiz.at(x).question.set(q)` as a
/// distinct syntactic operation from `Quiz.at(x).answer.set(a)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// Register write: `put(v)`.
    RegPut,
    /// Register read: `get():v`.
    RegGet,
    /// Counter increment: `inc(n)`.
    CtrInc,
    /// Counter read: `get():n`.
    CtrGet,
    /// Set insertion: `add(e)`.
    SetAdd,
    /// Set removal: `remove(e)`.
    SetRemove,
    /// Set membership query: `contains(e):b`.
    SetContains,
    /// Set cardinality query: `size():n`.
    SetSize,
    /// Map write: `put(k,v)`.
    MapPut,
    /// Map entry removal: `remove(k)`.
    MapRemove,
    /// Map copy: `copy(k,k')` copies the value at key `k` to key `k'`.
    MapCopy,
    /// Map read: `get(k):v`.
    MapGet,
    /// Map key query: `contains(k):b`.
    MapContains,
    /// Map cardinality query: `size():n`.
    MapSize,
    /// Log append: `append(e)` (grow-only sequence, ordered by
    /// arbitration).
    LogAppend,
    /// Log last-element query: `last():v`.
    LogLast,
    /// Log length query: `count():n`.
    LogCount,
    /// Log membership query: `has(e):b`.
    LogHas,
    /// Table fresh-row creation: `add_row(r)` where `r` is a fresh unique
    /// row identity supplied by the store.
    TblAddRow,
    /// Table row deletion: `delete_row(r)`.
    TblDeleteRow,
    /// Table row-existence query: `contains(r):b`.
    TblContains,
    /// Register-valued field write: `at(r).f.set(v)`.
    FldSet(FieldName),
    /// Register-valued field read: `at(r).f.get():v`.
    FldGet(FieldName),
    /// Set-valued field insertion: `at(r).f.add(e)`.
    FldAdd(FieldName),
    /// Set-valued field removal: `at(r).f.remove(e)`.
    FldRemove(FieldName),
    /// Set-valued field membership query: `at(r).f.contains(e):b`.
    FldContains(FieldName),
    /// Set-valued field cardinality query: `at(r).f.size():n`.
    FldSize(FieldName),
}

impl OpKind {
    /// Whether this operation modifies the store (updates have no return
    /// value; queries do not modify the store).
    pub fn is_update(&self) -> bool {
        use OpKind::*;
        matches!(
            self,
            RegPut
                | CtrInc
                | SetAdd
                | SetRemove
                | MapPut
                | MapRemove
                | MapCopy
                | LogAppend
                | TblAddRow
                | TblDeleteRow
                | FldSet(_)
                | FldAdd(_)
                | FldRemove(_)
        )
    }

    /// Whether this operation returns a value to the client.
    pub fn is_query(&self) -> bool {
        !self.is_update()
    }

    /// Number of arguments the operation takes.
    pub fn arity(&self) -> usize {
        use OpKind::*;
        match self {
            RegGet | CtrGet | SetSize | MapSize | LogLast | LogCount => 0,
            RegPut | CtrInc | SetAdd | SetRemove | SetContains | MapGet | MapRemove
            | MapContains | LogAppend | LogHas | TblAddRow | TblDeleteRow | TblContains
            | FldGet(_) | FldSize(_) => 1,
            MapPut | MapCopy | FldSet(_) | FldAdd(_) | FldRemove(_) | FldContains(_) => 2,
        }
    }

    /// The field this operation accesses, if it is a field operation.
    pub fn field(&self) -> Option<&FieldName> {
        use OpKind::*;
        match self {
            FldSet(f) | FldGet(f) | FldAdd(f) | FldRemove(f) | FldContains(f) | FldSize(f) => {
                Some(f)
            }
            _ => None,
        }
    }

    /// Whether this operation creates its row implicitly (any table field
    /// update does, per the implicit-record-creation semantics).
    pub fn creates_record(&self) -> bool {
        use OpKind::*;
        matches!(self, TblAddRow | FldSet(_) | FldAdd(_) | FldRemove(_))
    }

    /// Short method name as shown in the paper's figures.
    pub fn method_name(&self) -> String {
        use OpKind::*;
        match self {
            RegPut | MapPut => "put".into(),
            RegGet | CtrGet | MapGet => "get".into(),
            CtrInc => "inc".into(),
            SetAdd => "add".into(),
            SetRemove => "remove".into(),
            SetContains | MapContains | TblContains => "contains".into(),
            SetSize | MapSize => "size".into(),
            MapRemove => "remove".into(),
            MapCopy => "cp".into(),
            LogAppend => "append".into(),
            LogLast => "last".into(),
            LogCount => "count".into(),
            LogHas => "has".into(),
            TblAddRow => "add_row".into(),
            TblDeleteRow => "delete_row".into(),
            FldSet(f) => format!("{f}.set"),
            FldGet(f) => format!("{f}.get"),
            FldAdd(f) => format!("{f}.add"),
            FldRemove(f) => format!("{f}.remove"),
            FldContains(f) => format!("{f}.contains"),
            FldSize(f) => format!("{f}.size"),
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.method_name())
    }
}

use crate::value::Value;

/// An instantiated operation: the symbol together with concrete arguments
/// and, for queries, the returned value.
///
/// Corresponds to the paper's `m(a1, …, an−1) : an` tuples (minus the event
/// identity, which [`crate::Event`] adds).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Operation {
    /// The object the operation acts on.
    pub object: ObjectName,
    /// The operation symbol.
    pub kind: OpKind,
    /// Concrete arguments; length must equal `kind.arity()`.
    pub args: Vec<Value>,
    /// Return value; `Some` exactly for queries.
    pub ret: Option<Value>,
}

impl Operation {
    /// Creates an operation, checking arity and update/query shape.
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != kind.arity()`, or if `ret` is present on an
    /// update / absent on a query.
    pub fn new(
        object: impl Into<ObjectName>,
        kind: OpKind,
        args: Vec<Value>,
        ret: Option<Value>,
    ) -> Self {
        assert_eq!(args.len(), kind.arity(), "arity mismatch for {kind}");
        assert_eq!(
            ret.is_some(),
            kind.is_query(),
            "return value must be present iff the operation is a query ({kind})"
        );
        Operation { object: object.into(), kind, args, ret }
    }

    /// Whether the operation is an update.
    pub fn is_update(&self) -> bool {
        self.kind.is_update()
    }

    /// Whether the operation is a query.
    pub fn is_query(&self) -> bool {
        self.kind.is_query()
    }

    // --- convenience constructors used throughout tests and examples ---

    /// `object.put(v)` on a register.
    pub fn reg_put(object: impl Into<ObjectName>, v: Value) -> Self {
        Operation::new(object, OpKind::RegPut, vec![v], None)
    }

    /// `object.get():ret` on a register.
    pub fn reg_get(object: impl Into<ObjectName>, ret: Value) -> Self {
        Operation::new(object, OpKind::RegGet, vec![], Some(ret))
    }

    /// `object.inc(n)` on a counter.
    pub fn ctr_inc(object: impl Into<ObjectName>, n: i64) -> Self {
        Operation::new(object, OpKind::CtrInc, vec![Value::int(n)], None)
    }

    /// `object.get():ret` on a counter.
    pub fn ctr_get(object: impl Into<ObjectName>, ret: i64) -> Self {
        Operation::new(object, OpKind::CtrGet, vec![], Some(Value::int(ret)))
    }

    /// `object.add(e)` on a set.
    pub fn set_add(object: impl Into<ObjectName>, e: Value) -> Self {
        Operation::new(object, OpKind::SetAdd, vec![e], None)
    }

    /// `object.remove(e)` on a set.
    pub fn set_remove(object: impl Into<ObjectName>, e: Value) -> Self {
        Operation::new(object, OpKind::SetRemove, vec![e], None)
    }

    /// `object.contains(e):ret` on a set.
    pub fn set_contains(object: impl Into<ObjectName>, e: Value, ret: bool) -> Self {
        Operation::new(object, OpKind::SetContains, vec![e], Some(Value::bool(ret)))
    }

    /// `object.size():ret` on a set.
    pub fn set_size(object: impl Into<ObjectName>, ret: i64) -> Self {
        Operation::new(object, OpKind::SetSize, vec![], Some(Value::int(ret)))
    }

    /// `object.put(k, v)` on a map.
    pub fn map_put(object: impl Into<ObjectName>, k: Value, v: Value) -> Self {
        Operation::new(object, OpKind::MapPut, vec![k, v], None)
    }

    /// `object.get(k):ret` on a map.
    pub fn map_get(object: impl Into<ObjectName>, k: Value, ret: Value) -> Self {
        Operation::new(object, OpKind::MapGet, vec![k], Some(ret))
    }

    /// `object.remove(k)` on a map.
    pub fn map_remove(object: impl Into<ObjectName>, k: Value) -> Self {
        Operation::new(object, OpKind::MapRemove, vec![k], None)
    }

    /// `object.contains(k):ret` on a map.
    pub fn map_contains(object: impl Into<ObjectName>, k: Value, ret: bool) -> Self {
        Operation::new(object, OpKind::MapContains, vec![k], Some(Value::bool(ret)))
    }

    /// `object.cp(src, dst)` on a map.
    pub fn map_copy(object: impl Into<ObjectName>, src: Value, dst: Value) -> Self {
        Operation::new(object, OpKind::MapCopy, vec![src, dst], None)
    }

    /// `object.append(e)` on a log.
    pub fn log_append(object: impl Into<ObjectName>, e: Value) -> Self {
        Operation::new(object, OpKind::LogAppend, vec![e], None)
    }

    /// `object.last():ret` on a log.
    pub fn log_last(object: impl Into<ObjectName>, ret: Value) -> Self {
        Operation::new(object, OpKind::LogLast, vec![], Some(ret))
    }

    /// `object.count():ret` on a log.
    pub fn log_count(object: impl Into<ObjectName>, ret: i64) -> Self {
        Operation::new(object, OpKind::LogCount, vec![], Some(Value::int(ret)))
    }

    /// `object.has(e):ret` on a log.
    pub fn log_has(object: impl Into<ObjectName>, e: Value, ret: bool) -> Self {
        Operation::new(object, OpKind::LogHas, vec![e], Some(Value::bool(ret)))
    }

    /// `object.add_row(r)` on a table, `r` fresh.
    pub fn tbl_add_row(object: impl Into<ObjectName>, r: Value) -> Self {
        Operation::new(object, OpKind::TblAddRow, vec![r], None)
    }

    /// `object.delete_row(r)` on a table.
    pub fn tbl_delete_row(object: impl Into<ObjectName>, r: Value) -> Self {
        Operation::new(object, OpKind::TblDeleteRow, vec![r], None)
    }

    /// `object.contains(r):ret` on a table.
    pub fn tbl_contains(object: impl Into<ObjectName>, r: Value, ret: bool) -> Self {
        Operation::new(object, OpKind::TblContains, vec![r], Some(Value::bool(ret)))
    }

    /// `object.at(r).f.set(v)` on a table.
    pub fn fld_set(
        object: impl Into<ObjectName>,
        f: impl Into<FieldName>,
        r: Value,
        v: Value,
    ) -> Self {
        Operation::new(object, OpKind::FldSet(f.into()), vec![r, v], None)
    }

    /// `object.at(r).f.get():ret` on a table.
    pub fn fld_get(
        object: impl Into<ObjectName>,
        f: impl Into<FieldName>,
        r: Value,
        ret: Value,
    ) -> Self {
        Operation::new(object, OpKind::FldGet(f.into()), vec![r], Some(ret))
    }

    /// `object.at(r).f.add(e)` on a table.
    pub fn fld_add(
        object: impl Into<ObjectName>,
        f: impl Into<FieldName>,
        r: Value,
        e: Value,
    ) -> Self {
        Operation::new(object, OpKind::FldAdd(f.into()), vec![r, e], None)
    }

    /// `object.at(r).f.remove(e)` on a table.
    pub fn fld_remove(
        object: impl Into<ObjectName>,
        f: impl Into<FieldName>,
        r: Value,
        e: Value,
    ) -> Self {
        Operation::new(object, OpKind::FldRemove(f.into()), vec![r, e], None)
    }

    /// `object.at(r).f.contains(e):ret` on a table.
    pub fn fld_contains(
        object: impl Into<ObjectName>,
        f: impl Into<FieldName>,
        r: Value,
        e: Value,
        ret: bool,
    ) -> Self {
        Operation::new(object, OpKind::FldContains(f.into()), vec![r, e], Some(Value::bool(ret)))
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}(", self.object, self.kind)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")?;
        if let Some(r) = &self.ret {
            write!(f, ":{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_query_partition() {
        assert!(OpKind::RegPut.is_update());
        assert!(OpKind::RegGet.is_query());
        assert!(OpKind::TblAddRow.is_update());
        assert!(OpKind::FldContains("f".into()).is_query());
        assert!(!OpKind::FldContains("f".into()).is_update());
    }

    #[test]
    fn arity_matches_constructors() {
        let op = Operation::map_put("M", Value::str("A"), Value::int(1));
        assert_eq!(op.args.len(), op.kind.arity());
        let op = Operation::fld_contains("Users", "flwrs", Value::str("A"), Value::str("B"), true);
        assert_eq!(op.args.len(), 2);
        assert!(op.is_query());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_is_checked() {
        let _ = Operation::new("M", OpKind::MapPut, vec![Value::int(1)], None);
    }

    #[test]
    #[should_panic(expected = "return value")]
    fn query_shape_is_checked() {
        let _ = Operation::new("M", OpKind::MapGet, vec![Value::int(1)], None);
    }

    #[test]
    fn display_matches_paper_style() {
        let op = Operation::map_put("M", Value::str("A"), Value::int(1));
        assert_eq!(op.to_string(), "M.put(\"A\",1)");
        let op = Operation::map_get("M", Value::str("B"), Value::int(0));
        assert_eq!(op.to_string(), "M.get(\"B\"):0");
        let op = Operation::fld_set("Quiz", "question", Value::int(1), Value::str("A"));
        assert_eq!(op.to_string(), "Quiz.question.set(1,\"A\")");
    }

    #[test]
    fn creates_record_classification() {
        assert!(OpKind::TblAddRow.creates_record());
        assert!(OpKind::FldAdd("f".into()).creates_record());
        assert!(!OpKind::TblDeleteRow.creates_record());
        assert!(!OpKind::TblContains.creates_record());
    }

    #[test]
    fn names_intern_cheaply() {
        let a = Name::new("Quiz");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "Quiz");
    }
}
