//! Property tests for histories and schedules driven through the causal
//! simulator.

use c4_store::op::OpKind;
use c4_store::schedule::{Relation, Schedule, ScheduleError};
use c4_store::sim::CausalSim;
use c4_store::{EventId, History, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    Txn { session: usize, ops: Vec<(bool, i64, i64)> }, // (is_update, key, val)
    DeliverSome(u64),
    Migrate { session: usize, replica: usize },
}

/// Drives the simulator through `steps` and returns the resulting
/// (history, schedule) pair.
fn run_sim(steps: Vec<Step>) -> (History, Schedule) {
    let mut sim = CausalSim::new(3);
    let sessions: Vec<_> = (0..3).map(|r| sim.session(r)).collect();
    for step in steps {
        match step {
            Step::Txn { session, ops } => {
                let s = sessions[session];
                sim.begin(s);
                for (is_update, key, val) in ops {
                    if is_update {
                        sim.update(s, "M", OpKind::MapPut, vec![Value::int(key), Value::int(val)]);
                    } else {
                        let _ = sim.query(s, "M", OpKind::MapGet, vec![Value::int(key)]);
                    }
                }
                sim.commit(s);
            }
            Step::DeliverSome(bits) => {
                for (i, d) in sim.deliverable().into_iter().enumerate() {
                    if bits & (1 << (i % 64)) != 0 {
                        sim.deliver(d);
                    }
                }
            }
            Step::Migrate { session, replica } => {
                sim.migrate(sessions[session], replica);
            }
        }
    }
    sim.deliver_all();
    sim.into_history()
}

/// Copies a visibility relation minus one edge.
fn without_edge(vis: &Relation, n: usize, skip: (EventId, EventId)) -> Relation {
    let mut out = Relation::new(n);
    for a in (0..n).map(|i| EventId(i as u32)) {
        for b in vis.successors(a) {
            if (a, b) != skip {
                out.insert(a, b);
            }
        }
    }
    out
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (0..3usize, proptest::collection::vec((any::<bool>(), 0..3i64, 0..5i64), 1..4))
                .prop_map(|(session, ops)| Step::Txn { session, ops }),
            any::<u64>().prop_map(Step::DeliverSome),
            (0..3usize, 0..3usize).prop_map(|(session, replica)| Step::Migrate {
                session,
                replica
            }),
        ],
        1..25,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Whatever the interleaving of transactions, migrations and partial
    /// deliveries, the simulator produces a history with a fully legal
    /// schedule: (S1) legality, (S2) causality, (S3) atomic visibility.
    #[test]
    fn simulator_schedules_are_always_legal(steps in arb_steps()) {
        let (h, sched) = run_sim(steps);
        prop_assert!(sched.check(&h).is_ok());
    }

    /// Deleting a session-order edge from visibility is always caught as
    /// an (S2a) violation — and precisely as that edge.
    #[test]
    fn dropped_session_order_edge_is_rejected(steps in arb_steps(), pick in any::<u64>()) {
        let (h, sched) = run_sim(steps);
        let so: Vec<_> = h.so_pairs().collect();
        if so.is_empty() { return; }
        let (a, b) = so[(pick % so.len() as u64) as usize];
        let vis = without_edge(sched.visibility(), h.len(), (a, b));
        let tampered = Schedule::new(&h, sched.ar_order().to_vec(), vis).unwrap();
        prop_assert_eq!(tampered.check_pre(&h), Err(ScheduleError::SoNotInVis(a, b)));
    }

    /// A visibility edge pointing against arbitration is rejected by the
    /// constructor (`vı ⊆ ar` shape check).
    #[test]
    fn backwards_visibility_edge_is_rejected(steps in arb_steps(), pick in any::<u64>()) {
        let (h, sched) = run_sim(steps);
        if h.len() < 2 { return; }
        let order = sched.ar_order();
        let i = 1 + (pick % (order.len() as u64 - 1)) as usize;
        let (later, earlier) = (order[i], order[i - 1]);
        let mut vis = without_edge(sched.visibility(), h.len(), (later, later)); // plain copy
        vis.insert(later, earlier);
        prop_assert_eq!(
            Schedule::new(&h, order.to_vec(), vis).err(),
            Some(ScheduleError::VisNotInAr(later, earlier))
        );
    }

    /// Deleting the closing edge of a visibility chain a→b→c (when a→c is
    /// not itself forced by session order) is caught as an (S2b)
    /// transitivity violation on exactly that pair.
    #[test]
    fn broken_transitivity_is_rejected(steps in arb_steps()) {
        let (h, sched) = run_sim(steps);
        let vis = sched.visibility();
        let ids = || (0..h.len()).map(|i| EventId(i as u32));
        let triple = ids().find_map(|a| {
            vis.successors(a).find_map(|b| {
                vis.successors(b)
                    .find(|&c| c != a && vis.contains(a, c) && !h.so(a, c))
                    .map(|c| (a, b, c))
            })
        });
        let Some((a, _, c)) = triple else { return; };
        let tampered =
            Schedule::new(&h, sched.ar_order().to_vec(), without_edge(vis, h.len(), (a, c)))
                .unwrap();
        match tampered.check_pre(&h) {
            Err(ScheduleError::VisNotTransitive(x, _, z)) => {
                prop_assert_eq!((x, z), (a, c));
            }
            other => prop_assert!(false, "expected VisNotTransitive, got {:?}", other),
        }
    }

    /// Making one event of a transaction visible without the rest breaks
    /// atomic visibility (S3) — or transitivity, whichever the checker
    /// trips first; either way the schedule is rejected.
    #[test]
    fn partial_transaction_visibility_is_rejected(steps in arb_steps()) {
        let (h, sched) = run_sim(steps);
        // Two distinct multi-event transactions with no visibility between
        // their first events, in arbitration order.
        let pair = h.transactions().flat_map(|s| h.transactions().map(move |t| (s, t))).find(
            |(s, t)| {
                s.id != t.id
                    && s.events.len() > 1
                    && t.events.len() > 1
                    && !sched.vis(s.events[0], t.events[0])
                    && sched.ar(s.events[0], t.events[0])
            },
        );
        let Some((s, t)) = pair else { return; };
        let mut vis = without_edge(sched.visibility(), h.len(), (s.events[0], s.events[0]));
        vis.insert(s.events[0], t.events[0]);
        let tampered = Schedule::new(&h, sched.ar_order().to_vec(), vis).unwrap();
        prop_assert!(tampered.check_pre(&h).is_err());
    }

    /// Relation transitive closure is monotone, idempotent and sound.
    #[test]
    fn relation_closure_properties(
        pairs in proptest::collection::vec((0u32..12, 0u32..12), 0..30)
    ) {
        let mut r = Relation::new(12);
        for (a, b) in &pairs {
            r.insert(EventId(*a), EventId(*b));
        }
        let mut closed = r.clone();
        closed.close_transitively();
        for (a, b) in &pairs {
            prop_assert!(closed.contains(EventId(*a), EventId(*b)));
        }
        prop_assert!(closed.is_transitive());
        let mut twice = closed.clone();
        twice.close_transitively();
        prop_assert_eq!(&twice, &closed);
        // Soundness: every closed pair is connected in the original.
        for a in 0..12u32 {
            for b in 0..12u32 {
                if closed.contains(EventId(a), EventId(b)) {
                    let mut seen = vec![false; 12];
                    let mut stack = vec![a];
                    let mut reachable = false;
                    while let Some(x) = stack.pop() {
                        for y in r.successors(EventId(x)) {
                            if y.0 == b {
                                reachable = true;
                            }
                            if !seen[y.0 as usize] {
                                seen[y.0 as usize] = true;
                                stack.push(y.0);
                            }
                        }
                    }
                    prop_assert!(reachable, "{} → {} not justified", a, b);
                }
            }
        }
    }
}

/// (S1) legality: a recorded query outcome that its visible prefix cannot
/// justify is rejected as `Illegal`. The history is produced by a real
/// run (a put delivered cross-replica, then a get observing it); the
/// tampered schedule hides the put from the get.
#[test]
fn unjustified_return_value_is_rejected() {
    let mut sim = CausalSim::new(2);
    let s0 = sim.session(0);
    let s1 = sim.session(1);
    sim.begin(s0);
    sim.update(s0, "M", OpKind::MapPut, vec![Value::int(1), Value::int(5)]);
    sim.commit(s0);
    sim.deliver_all();
    sim.begin(s1);
    let got = sim.query(s1, "M", OpKind::MapGet, vec![Value::int(1)]);
    sim.commit(s1);
    assert_eq!(got, Value::int(5), "the get really observed the put");
    let (h, sched) = sim.into_history();
    assert!(sched.check(&h).is_ok());
    // Empty visibility: no so pairs cross the sessions and both
    // transactions are single-event, so (S2)/(S3) hold vacuously — but the
    // get's recorded result 5 is unjustified by an empty visible prefix.
    let empty = Schedule::new(&h, sched.ar_order().to_vec(), Relation::new(h.len())).unwrap();
    assert!(matches!(empty.check(&h), Err(ScheduleError::Illegal { .. })));
}
