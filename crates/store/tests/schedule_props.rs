//! Property tests for histories and schedules driven through the causal
//! simulator.

use c4_store::op::OpKind;
use c4_store::schedule::Relation;
use c4_store::sim::CausalSim;
use c4_store::{EventId, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    Txn { session: usize, ops: Vec<(bool, i64, i64)> }, // (is_update, key, val)
    DeliverSome(u64),
    Migrate { session: usize, replica: usize },
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (0..3usize, proptest::collection::vec((any::<bool>(), 0..3i64, 0..5i64), 1..4))
                .prop_map(|(session, ops)| Step::Txn { session, ops }),
            any::<u64>().prop_map(Step::DeliverSome),
            (0..3usize, 0..3usize).prop_map(|(session, replica)| Step::Migrate {
                session,
                replica
            }),
        ],
        1..25,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Whatever the interleaving of transactions, migrations and partial
    /// deliveries, the simulator produces a history with a fully legal
    /// schedule: (S1) legality, (S2) causality, (S3) atomic visibility.
    #[test]
    fn simulator_schedules_are_always_legal(steps in arb_steps()) {
        let mut sim = CausalSim::new(3);
        let sessions: Vec<_> = (0..3).map(|r| sim.session(r)).collect();
        for step in steps {
            match step {
                Step::Txn { session, ops } => {
                    let s = sessions[session];
                    sim.begin(s);
                    for (is_update, key, val) in ops {
                        if is_update {
                            sim.update(s, "M", OpKind::MapPut,
                                vec![Value::int(key), Value::int(val)]);
                        } else {
                            let _ = sim.query(s, "M", OpKind::MapGet, vec![Value::int(key)]);
                        }
                    }
                    sim.commit(s);
                }
                Step::DeliverSome(bits) => {
                    for (i, d) in sim.deliverable().into_iter().enumerate() {
                        if bits & (1 << (i % 64)) != 0 {
                            sim.deliver(d);
                        }
                    }
                }
                Step::Migrate { session, replica } => {
                    sim.migrate(sessions[session], replica);
                }
            }
        }
        sim.deliver_all();
        let (h, sched) = sim.into_history();
        prop_assert!(sched.check(&h).is_ok());
    }

    /// Relation transitive closure is monotone, idempotent and sound.
    #[test]
    fn relation_closure_properties(
        pairs in proptest::collection::vec((0u32..12, 0u32..12), 0..30)
    ) {
        let mut r = Relation::new(12);
        for (a, b) in &pairs {
            r.insert(EventId(*a), EventId(*b));
        }
        let mut closed = r.clone();
        closed.close_transitively();
        for (a, b) in &pairs {
            prop_assert!(closed.contains(EventId(*a), EventId(*b)));
        }
        prop_assert!(closed.is_transitive());
        let mut twice = closed.clone();
        twice.close_transitively();
        prop_assert_eq!(&twice, &closed);
        // Soundness: every closed pair is connected in the original.
        for a in 0..12u32 {
            for b in 0..12u32 {
                if closed.contains(EventId(a), EventId(b)) {
                    let mut seen = vec![false; 12];
                    let mut stack = vec![a];
                    let mut reachable = false;
                    while let Some(x) = stack.pop() {
                        for y in r.successors(EventId(x)) {
                            if y.0 == b {
                                reachable = true;
                            }
                            if !seen[y.0 as usize] {
                                seen[y.0 as usize] = true;
                                stack.push(y.0);
                            }
                        }
                    }
                    prop_assert!(reachable, "{} → {} not justified", a, b);
                }
            }
        }
    }
}
