//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of the proptest 1.x API its property
//! tests use: the [`strategy::Strategy`] trait with `prop_map`,
//! `prop_recursive` and `boxed`, range/tuple/`Just`/`any` strategies,
//! [`collection::vec`], and the `proptest!`, `prop_oneof!`,
//! `prop_assert!` and `prop_assert_eq!` macros.
//!
//! Differences from upstream, deliberately accepted for tests:
//! - **No shrinking**: a failing case reports its inputs via the panic
//!   message (strategies generate `Debug` values bound to the named
//!   arguments) but is not minimized.
//! - **Deterministic seeding**: every test runs the same fixed-seed
//!   SplitMix64 stream, so failures reproduce exactly across runs.

/// Test-runner configuration and deterministic RNG.
pub mod test_runner {
    /// Number of random cases per property (upstream `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Cases to generate and run.
        pub cases: u32,
    }

    impl Config {
        /// Upstream constructor name.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 stream used to drive all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator every property test uses.
        pub fn deterministic() -> Self {
            TestRng { state: 0x5DEE_CE66_D1CE_4E5B }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample an empty domain");
            self.next_u64() % bound
        }
    }
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A generator of random values (upstream `Strategy`, minus value
    /// trees and shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `self` generates leaves, and
        /// `recurse` lifts a strategy for depth-`d` values to one for
        /// depth-`d+1` values. `_desired_size`/`_expected_branch` are
        /// accepted for upstream signature compatibility only.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                cur = Union::new(vec![leaf.clone(), recurse(cur).boxed()]).boxed();
            }
            cur
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe view of a strategy, used for type erasure.
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A uniform union over the given alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = end.wrapping_sub(start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Full-domain strategy for `any::<T>()`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value of the type.
        fn arbitrary_with(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_with(rng)
        }
    }

    /// The canonical full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_with(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_with(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length bound for [`vec`] (upstream `SizeRange`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length, inclusive.
        pub min: usize,
        /// Maximum length, inclusive.
        pub max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Upstream-compatible `prop::` facade (`prop::collection::vec` etc.).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// The glob-import surface used by tests.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Uniform choice among strategy alternatives of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Property assertion (no shrinking: delegates to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion (no shrinking: delegates to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `body` over `cases` generated inputs.
/// Failing inputs are printed by the panic handler below before the
/// assertion failure propagates.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr);
        $( $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for case in 0..cfg.cases {
                    let inputs = ($($crate::strategy::Strategy::generate(&($strat), &mut rng),)*);
                    let run = std::panic::AssertUnwindSafe(|| {
                        let ($($arg,)*) = inputs.clone();
                        $body
                    });
                    if let Err(payload) = std::panic::catch_unwind(run) {
                        eprintln!(
                            "proptest case {case}/{} of `{}` failed with inputs: {:#?}",
                            cfg.cases,
                            stringify!($name),
                            inputs
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_vecs_and_unions_generate_in_domain() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        let strat = prop::collection::vec((0..5usize, any::<bool>(), -2..3i64), 1..4);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            for (a, _, c) in v {
                assert!(a < 5);
                assert!((-2..3).contains(&c));
            }
        }
        let choice = prop_oneof![Just("a"), Just("b"), Just("c")];
        for _ in 0..50 {
            assert!(["a", "b", "c"].contains(&choice.generate(&mut rng)));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(usize),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0..10usize).prop_map(T::Leaf).prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: multiple args, patterns, trailing comma.
        #[test]
        fn macro_binds_arguments((a, b) in (0..10usize, 0..10usize), flip in any::<bool>(),) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(flip, flip, "flip was {}", flip);
        }
    }
}
