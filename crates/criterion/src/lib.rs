//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of the criterion 0.5 API its benches
//! use: [`Criterion`] with `bench_function`/`benchmark_group`/
//! `sample_size`, [`Bencher::iter`], `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark runs one warm-up
//! iteration, then `sample_size` timed iterations, and reports min /
//! mean / max wall-clock time per iteration. There is no statistical
//! analysis, plotting, or result persistence. Passing `--test` (as
//! `cargo test` does for bench targets) runs every closure exactly once
//! so benches double as smoke tests.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { sample_size: 20, test_mode }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, self.test_mode, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, self.test_mode, f);
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` does the timing.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iterations: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up (also the only run in --test mode).
        black_box(routine());
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, test_mode: bool, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        iterations: if test_mode { 0 } else { sample_size },
    };
    f(&mut b);
    if test_mode {
        println!("{id:<44} ok (test mode)");
        return;
    }
    if b.samples.is_empty() {
        println!("{id:<44} no samples (closure never called iter)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().expect("non-empty");
    let max = *b.samples.iter().max().expect("non-empty");
    println!(
        "{id:<44} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   ({} samples)",
        b.samples.len()
    );
}

/// Declares a bench group: a function running each target against a
/// shared [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_reports() {
        let mut c = Criterion { sample_size: 3, test_mode: false };
        let mut runs = 0usize;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 timed.
        assert_eq!(runs, 4);
    }

    #[test]
    fn groups_apply_their_own_sample_size() {
        let mut c = Criterion { sample_size: 50, test_mode: false };
        let mut runs = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("inner", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 3);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { sample_size: 50, test_mode: true };
        let mut runs = 0usize;
        c.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}
