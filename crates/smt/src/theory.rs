//! Lazy theory layer: checks a full boolean assignment's asserted theory
//! atoms for consistency, producing either a combined theory model or a
//! minimized conflict.

use std::collections::HashMap;

use crate::arith::{self, ArithResult, Constraint};
use crate::euf::{self, EufResult};
use crate::term::{Context, Sort, TermData, TermId};

/// A theory model for a consistent assignment.
#[derive(Debug, Default)]
pub struct TheoryModel {
    /// Equivalence-class representative for every term of uninterpreted
    /// sort that appeared in an asserted equality.
    pub classes: HashMap<TermId, TermId>,
    /// Integer values for every integer term that appeared in an asserted
    /// comparison.
    pub ints: HashMap<TermId, i64>,
}

/// Result of a theory check over asserted atoms.
#[derive(Debug)]
pub enum TheoryResult {
    /// Consistent.
    Consistent(TheoryModel),
    /// Inconsistent; indices (into the asserted-atom slice) of a minimized
    /// conflicting subset.
    Conflict(Vec<usize>),
}

/// Checks the conjunction of `(atom, polarity)` pairs.
///
/// Atoms must be `Eq` over uninterpreted sorts or `Le`/`Lt` over integers
/// (the preprocessor eliminates everything else).
pub fn check(ctx: &Context, asserted: &[(TermId, bool)]) -> TheoryResult {
    match check_once(ctx, asserted) {
        Ok(model) => TheoryResult::Consistent(model),
        Err(core) => TheoryResult::Conflict(minimize(ctx, asserted, core)),
    }
}

fn check_once(ctx: &Context, asserted: &[(TermId, bool)]) -> Result<TheoryModel, Vec<usize>> {
    // Partition the literals.
    let mut eqs: Vec<((TermId, TermId), usize)> = Vec::new();
    let mut diseqs: Vec<((TermId, TermId), usize)> = Vec::new();
    let mut constraints: Vec<(Constraint, usize)> = Vec::new();
    for (i, &(atom, polarity)) in asserted.iter().enumerate() {
        match ctx.data(atom) {
            TermData::Eq(a, b) => {
                debug_assert_ne!(ctx.sort(*a), Sort::Int, "int equalities are preprocessed away");
                debug_assert_ne!(ctx.sort(*a), Sort::Bool, "bool equalities are preprocessed away");
                if polarity {
                    eqs.push(((*a, *b), i));
                } else {
                    diseqs.push(((*a, *b), i));
                }
            }
            TermData::Le(a, b) => {
                if polarity {
                    constraints.push((Constraint { lhs: *a, rhs: *b, offset: 0 }, i));
                } else {
                    // ¬(a ≤ b) ⟺ b < a ⟺ b ≤ a - 1.
                    constraints.push((Constraint { lhs: *b, rhs: *a, offset: -1 }, i));
                }
            }
            TermData::Lt(a, b) => {
                if polarity {
                    constraints.push((Constraint { lhs: *a, rhs: *b, offset: -1 }, i));
                } else {
                    // ¬(a < b) ⟺ b ≤ a.
                    constraints.push((Constraint { lhs: *b, rhs: *a, offset: 0 }, i));
                }
            }
            other => panic!("unsupported theory atom: {other:?}"),
        }
    }
    // EUF.
    let eq_pairs: Vec<(TermId, TermId)> = eqs.iter().map(|&(p, _)| p).collect();
    let diseq_pairs: Vec<(TermId, TermId)> = diseqs.iter().map(|&(p, _)| p).collect();
    let classes = match euf::check(ctx, &eq_pairs, &diseq_pairs) {
        EufResult::Consistent(classes) => classes,
        EufResult::Inconsistent(bad_diseq) => {
            // Core: all equalities plus the violated disequality (minimized
            // later).
            let mut core: Vec<usize> = eqs.iter().map(|&(_, i)| i).collect();
            core.push(diseqs[bad_diseq].1);
            return Err(core);
        }
    };
    // Arithmetic.
    let cons: Vec<Constraint> = constraints.iter().map(|&(c, _)| c).collect();
    let ints = match arith::check(ctx, &cons) {
        ArithResult::Consistent(ints) => ints,
        ArithResult::Inconsistent(cycle) => {
            return Err(cycle.into_iter().map(|ci| constraints[ci].1).collect());
        }
    };
    Ok(TheoryModel { classes, ints })
}

/// Greedy conflict minimization: drop literals from the core while the rest
/// stays inconsistent.
fn minimize(ctx: &Context, asserted: &[(TermId, bool)], mut core: Vec<usize>) -> Vec<usize> {
    core.sort_unstable();
    core.dedup();
    let mut i = 0;
    while i < core.len() {
        let mut trial = core.clone();
        trial.remove(i);
        let subset: Vec<(TermId, bool)> = trial.iter().map(|&j| asserted[j]).collect();
        if check_once(ctx, &subset).is_err() {
            // Map conflict indices back through the subset? Simpler: keep
            // the trial core and restart scanning.
            core = trial;
        } else {
            i += 1;
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_theories() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let x = ctx.var("x", s);
        let y = ctx.var("y", s);
        let i = ctx.var("i", Sort::Int);
        let j = ctx.var("j", Sort::Int);
        let exy = ctx.eq(x, y);
        let lij = ctx.lt(i, j);
        let lji = ctx.lt(j, i);
        // x=y ∧ i<j ∧ j<i: arith conflict.
        match check(&ctx, &[(exy, true), (lij, true), (lji, true)]) {
            TheoryResult::Conflict(core) => {
                assert_eq!(core, vec![1, 2], "minimized to the arith cycle");
            }
            other => panic!("expected conflict: {other:?}"),
        }
        // Consistent variant.
        match check(&ctx, &[(exy, true), (lij, true)]) {
            TheoryResult::Consistent(m) => {
                assert_eq!(m.classes[&x], m.classes[&y]);
                assert!(m.ints[&i] < m.ints[&j]);
            }
            other => panic!("expected consistent: {other:?}"),
        }
    }

    #[test]
    fn minimization_drops_irrelevant_equalities() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let vs: Vec<TermId> = (0..6).map(|i| ctx.var(format!("v{i}"), s)).collect();
        // Chain v0=v1=v2, plus unrelated v3=v4, plus v0≠v2.
        let e01 = ctx.eq(vs[0], vs[1]);
        let e12 = ctx.eq(vs[1], vs[2]);
        let e34 = ctx.eq(vs[3], vs[4]);
        let e02 = ctx.eq(vs[0], vs[2]);
        let asserted = [(e34, true), (e01, true), (e12, true), (e02, false)];
        match check(&ctx, &asserted) {
            TheoryResult::Conflict(core) => {
                assert!(!core.contains(&0), "unrelated equality must be dropped: {core:?}");
                assert_eq!(core.len(), 3);
            }
            other => panic!("expected conflict: {other:?}"),
        }
    }

    #[test]
    fn negated_comparisons() {
        let mut ctx = Context::new();
        let i = ctx.var("i", Sort::Int);
        let ten = ctx.int(10);
        let le = ctx.le(i, ten);
        let lt = ctx.lt(i, ten);
        // ¬(i ≤ 10) ∧ i < 10 is inconsistent.
        match check(&ctx, &[(le, false), (lt, true)]) {
            TheoryResult::Conflict(_) => {}
            other => panic!("expected conflict: {other:?}"),
        }
        // ¬(i < 10) ∧ i ≤ 10 pins i = 10.
        match check(&ctx, &[(lt, false), (le, true)]) {
            TheoryResult::Consistent(m) => assert_eq!(m.ints[&i], 10),
            other => panic!("expected consistent: {other:?}"),
        }
    }
}
