//! The lazy DPLL(T) loop and models.

use std::collections::HashMap;

use crate::cnf;
use crate::sat::{SatOutcome, SatSolver};
use crate::term::{Context, Sort, TermData, TermId};
use crate::theory::{self, TheoryResult};

/// A first-order model of the assertions.
#[derive(Debug, Default)]
pub struct Model {
    bools: HashMap<TermId, bool>,
    ints: HashMap<TermId, i64>,
    classes: HashMap<TermId, TermId>,
}

impl Model {
    /// Truth value of a boolean subterm of the assertions, if it occurred.
    pub fn bool_value(&self, t: TermId) -> Option<bool> {
        self.bools.get(&t).copied()
    }

    /// Integer value of a term, if it was constrained by any comparison.
    pub fn int_value(&self, t: TermId) -> Option<i64> {
        self.ints.get(&t).copied()
    }

    /// Whether two uninterpreted-sort terms are equal in the model.
    ///
    /// Terms that never occurred in an asserted equality are unconstrained;
    /// the model makes them equal only to themselves.
    pub fn eval_eq(&self, a: TermId, b: TermId) -> Option<bool> {
        let ra = self.classes.get(&a).copied().unwrap_or(a);
        let rb = self.classes.get(&b).copied().unwrap_or(b);
        Some(ra == rb)
    }

    /// The model's equivalence-class representative of a term (itself if
    /// unconstrained).
    pub fn class_of(&self, t: TermId) -> TermId {
        self.classes.get(&t).copied().unwrap_or(t)
    }
}

/// Result of [`Context::solve`].
#[derive(Debug)]
pub enum SatResult {
    /// Satisfiable, with a model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

impl Context {
    /// Decides the conjunction of `assertions`.
    ///
    /// # Panics
    ///
    /// Panics if an assertion is not boolean.
    pub fn solve(&mut self, assertions: &[TermId]) -> SatResult {
        let rewritten: Vec<TermId> = {
            let mut cache = HashMap::new();
            assertions.iter().map(|&a| preprocess(self, a, &mut cache)).collect()
        };
        let encoded = cnf::encode(self, &rewritten);
        let mut sat = SatSolver::from_cnf(&encoded.cnf);
        loop {
            match sat.solve() {
                SatOutcome::Unsat => return SatResult::Unsat,
                SatOutcome::Sat(assignment) => {
                    let asserted: Vec<(TermId, bool)> = encoded
                        .atoms
                        .iter()
                        .map(|&(t, v)| (t, assignment[v.0 as usize]))
                        .collect();
                    match theory::check(self, &asserted) {
                        TheoryResult::Consistent(tm) => {
                            let mut bools = HashMap::new();
                            for (&t, &l) in &encoded.lit_of_term {
                                let v = assignment[l.var().0 as usize];
                                bools.insert(t, if l.is_positive() { v } else { !v });
                            }
                            return SatResult::Sat(Model {
                                bools,
                                ints: tm.ints,
                                classes: tm.classes,
                            });
                        }
                        TheoryResult::Conflict(core) => {
                            // Block this combination of theory literals.
                            sat.add_clause(core.iter().map(|&i| {
                                let (_, var) = encoded.atoms[i];
                                let (_, polarity) = (encoded.atoms[i].0, asserted[i].1);
                                var.lit(!polarity)
                            }));
                        }
                    }
                }
            }
        }
    }
}

/// Rewrites away constructs the theories do not handle natively:
/// `Eq` over `Int` (→ two `Le`), `Eq` over `Bool` (→ `Iff`), `Distinct`
/// (→ pairwise negated equalities).
fn preprocess(ctx: &mut Context, t: TermId, cache: &mut HashMap<TermId, TermId>) -> TermId {
    if let Some(&r) = cache.get(&t) {
        return r;
    }
    let result = match ctx.data(t).clone() {
        TermData::Eq(a, b) => match ctx.sort(a) {
            Sort::Int => {
                let le1 = ctx.le(a, b);
                let le2 = ctx.le(b, a);
                ctx.and([le1, le2])
            }
            Sort::Bool => {
                let a = preprocess(ctx, a, cache);
                let b = preprocess(ctx, b, cache);
                let iff = ctx.iff(a, b);
                preprocess(ctx, iff, cache)
            }
            Sort::Uninterpreted(_) => t,
        },
        TermData::Distinct(xs) => {
            let mut conj = Vec::new();
            for i in 0..xs.len() {
                for j in (i + 1)..xs.len() {
                    let e = ctx.eq(xs[i], xs[j]);
                    let e = preprocess(ctx, e, cache);
                    conj.push(ctx.not(e));
                }
            }
            ctx.and(conj)
        }
        TermData::Not(a) => {
            let a = preprocess(ctx, a, cache);
            ctx.not(a)
        }
        TermData::And(xs) => {
            let ys: Vec<TermId> = xs.iter().map(|&x| preprocess(ctx, x, cache)).collect();
            ctx.and(ys)
        }
        TermData::Or(xs) => {
            let ys: Vec<TermId> = xs.iter().map(|&x| preprocess(ctx, x, cache)).collect();
            ctx.or(ys)
        }
        TermData::Implies(a, b) => {
            let a = preprocess(ctx, a, cache);
            let b = preprocess(ctx, b, cache);
            ctx.implies(a, b)
        }
        TermData::Iff(a, b) => {
            let a = preprocess(ctx, a, cache);
            let b = preprocess(ctx, b, cache);
            ctx.iff(a, b)
        }
        _ => t,
    };
    cache.insert(t, result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euf_chain_unsat() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let vs: Vec<TermId> = (0..5).map(|i| ctx.var(format!("v{i}"), s)).collect();
        let mut conj: Vec<TermId> = (0..4).map(|i| ctx.eq(vs[i], vs[i + 1])).collect();
        let e = ctx.eq(vs[0], vs[4]);
        conj.push(ctx.not(e));
        let f = ctx.and(conj);
        assert!(!ctx.solve(&[f]).is_sat());
    }

    #[test]
    fn int_equality_is_rewritten() {
        let mut ctx = Context::new();
        let i = ctx.var("i", Sort::Int);
        let j = ctx.var("j", Sort::Int);
        let eq = ctx.eq(i, j);
        let lt = ctx.lt(i, j);
        assert!(!ctx.solve(&[eq, lt]).is_sat());
        let neq = ctx.not(eq);
        let SatResult::Sat(m) = ctx.solve(&[neq]) else { panic!("sat expected") };
        assert_ne!(m.int_value(i), m.int_value(j));
    }

    #[test]
    fn distinct_rewriting() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let x = ctx.var("x", s);
        let y = ctx.var("y", s);
        let z = ctx.var("z", s);
        let d = ctx.distinct(vec![x, y, z]);
        let exy = ctx.eq(x, y);
        assert!(!ctx.solve(&[d, exy]).is_sat());
        let SatResult::Sat(m) = ctx.solve(&[d]) else { panic!("sat expected") };
        assert_eq!(m.eval_eq(x, y), Some(false));
        assert_eq!(m.eval_eq(y, z), Some(false));
    }

    #[test]
    fn boolean_equality_as_iff() {
        let mut ctx = Context::new();
        let a = ctx.var("a", Sort::Bool);
        let b = ctx.var("b", Sort::Bool);
        let e = ctx.eq(a, b);
        let nb = ctx.not(b);
        assert!(!ctx.solve(&[e, a, nb]).is_sat());
        assert!(ctx.solve(&[e, a, b]).is_sat());
    }

    #[test]
    fn mixed_theories_with_boolean_structure() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let x = ctx.var("x", s);
        let y = ctx.var("y", s);
        let i = ctx.var("i", Sort::Int);
        let ten = ctx.int(10);
        // (x=y → i<10) ∧ (x≠y → 10<i) ∧ i=10 is unsat.
        let exy = ctx.eq(x, y);
        let lt10 = ctx.lt(i, ten);
        let gt10 = ctx.lt(ten, i);
        let nexy = ctx.not(exy);
        let i1 = ctx.implies(exy, lt10);
        let i2 = ctx.implies(nexy, gt10);
        let eq10 = ctx.eq(i, ten);
        assert!(!ctx.solve(&[i1, i2, eq10]).is_sat());
        // Dropping the pin makes it sat and the model obeys the implication.
        let SatResult::Sat(m) = ctx.solve(&[i1, i2]) else { panic!("sat expected") };
        let xy_equal = m.eval_eq(x, y).unwrap();
        let iv = m.int_value(i).unwrap();
        if xy_equal {
            assert!(iv < 10);
        } else {
            assert!(iv > 10);
        }
    }

    #[test]
    fn model_covers_boolean_subterms() {
        let mut ctx = Context::new();
        let a = ctx.var("a", Sort::Bool);
        let b = ctx.var("b", Sort::Bool);
        let or = ctx.or([a, b]);
        let na = ctx.not(a);
        let SatResult::Sat(m) = ctx.solve(&[or, na]) else { panic!("sat expected") };
        assert_eq!(m.bool_value(a), Some(false));
        assert_eq!(m.bool_value(b), Some(true));
        assert_eq!(m.bool_value(or), Some(true));
    }

    #[test]
    fn functions_through_full_pipeline() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let f = ctx.func("f", vec![s], s);
        let x = ctx.var("x", s);
        let y = ctx.var("y", s);
        let fx = ctx.app(f, vec![x]);
        let fy = ctx.app(f, vec![y]);
        let exy = ctx.eq(x, y);
        let efxfy = ctx.eq(fx, fy);
        let nefxfy = ctx.not(efxfy);
        assert!(!ctx.solve(&[exy, nefxfy]).is_sat());
        assert!(ctx.solve(&[efxfy, exy]).is_sat());
    }

    #[test]
    fn blocking_loop_terminates_on_hard_combination() {
        // Several interacting atoms that force multiple theory refutations.
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let vs: Vec<TermId> = (0..4).map(|i| ctx.var(format!("v{i}"), s)).collect();
        let iv: Vec<TermId> = (0..4).map(|i| ctx.var(format!("i{i}"), Sort::Int)).collect();
        let mut parts = Vec::new();
        // Pigeonhole-ish: all vs distinct, but each equal to one of two
        // "pigeons".
        let d = ctx.distinct(vs.clone());
        parts.push(d);
        let p = ctx.var("p", s);
        let q = ctx.var("q", s);
        for &v in &vs {
            let ep = ctx.eq(v, p);
            let eq_ = ctx.eq(v, q);
            parts.push(ctx.or([ep, eq_]));
        }
        // Plus an integer chain to exercise arith blocking.
        for w in iv.windows(2) {
            parts.push(ctx.lt(w[0], w[1]));
        }
        let f = ctx.and(parts);
        assert!(!ctx.solve(&[f]).is_sat());
    }
}
