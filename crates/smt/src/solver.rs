//! The lazy DPLL(T) loop and models.
//!
//! [`Incremental`] is the persistent entry point: one session owns a SAT
//! solver, the preprocess rewrite cache and the Tseitin term→literal
//! table, and answers a *sequence* of queries over a growing assertion
//! set. Queries are posed as assumption literals, so retired assertions
//! cost nothing, and everything learnt — CDCL clauses and theory-conflict
//! blocking clauses alike — carries over to later queries.
//! [`Context::solve`] is the one-shot convenience wrapper.

use std::collections::HashMap;

use crate::cnf;
use crate::sat::{AssumeOutcome, Cnf, Lit, SatSolver};
use crate::term::{Context, Sort, TermData, TermId};
use crate::theory::{self, TheoryModel, TheoryResult};

/// A first-order model of the assertions.
#[derive(Debug, Default)]
pub struct Model {
    bools: HashMap<TermId, bool>,
    ints: HashMap<TermId, i64>,
    classes: HashMap<TermId, TermId>,
}

impl Model {
    /// Truth value of a boolean subterm of the assertions, if it occurred.
    pub fn bool_value(&self, t: TermId) -> Option<bool> {
        self.bools.get(&t).copied()
    }

    /// Integer value of a term, if it was constrained by any comparison.
    pub fn int_value(&self, t: TermId) -> Option<i64> {
        self.ints.get(&t).copied()
    }

    /// Whether two uninterpreted-sort terms are equal in the model.
    ///
    /// Terms that never occurred in an asserted equality are unconstrained;
    /// the model makes them equal only to themselves.
    pub fn eval_eq(&self, a: TermId, b: TermId) -> Option<bool> {
        let ra = self.classes.get(&a).copied().unwrap_or(a);
        let rb = self.classes.get(&b).copied().unwrap_or(b);
        Some(ra == rb)
    }

    /// The model's equivalence-class representative of a term (itself if
    /// unconstrained).
    pub fn class_of(&self, t: TermId) -> TermId {
        self.classes.get(&t).copied().unwrap_or(t)
    }
}

/// Result of [`Context::solve`].
#[derive(Debug)]
pub enum SatResult {
    /// Satisfiable, with a model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

impl Context {
    /// Decides the conjunction of `assertions` (one-shot: a fresh
    /// [`Incremental`] session per call).
    ///
    /// # Panics
    ///
    /// Panics if an assertion is not boolean.
    pub fn solve(&mut self, assertions: &[TermId]) -> SatResult {
        let mut session = Incremental::new();
        for &a in assertions {
            session.assert(self, a);
        }
        session.solve_under(self, &[])
    }
}

/// A persistent incremental solving session over one term context.
///
/// The session caches, across solve calls:
///
/// * the preprocess rewrite map (term → theory-normal form),
/// * the Tseitin term → literal table (each boolean subterm is encoded
///   into CNF exactly once, ever),
/// * the CDCL solver itself, with its learnt clauses and variable
///   activities, and
/// * every theory-conflict blocking clause — theory lemmas are valid
///   formulas, so once learnt they refute the same boolean assignment in
///   every later query.
///
/// Queries follow the MiniSat assumption discipline: permanent facts go
/// in with [`Incremental::assert`]; retractable facts are guarded by an
/// [`Incremental::activation`] literal via [`Incremental::assert_under`]
/// and enabled by passing the guard to [`Incremental::solve_under`] /
/// [`Incremental::check_sat_assuming`]. Retiring a guard
/// ([`Incremental::retire`]) permanently deactivates its assertions.
#[derive(Debug)]
pub struct Incremental {
    sat: SatSolver,
    tseitin: cnf::Tseitin,
    pre_cache: HashMap<TermId, TermId>,
    n_solves: u64,
    n_blocking: u64,
}

impl Default for Incremental {
    fn default() -> Self {
        Incremental::new()
    }
}

impl Incremental {
    /// Creates an empty session.
    pub fn new() -> Self {
        Incremental {
            sat: SatSolver::new(0),
            tseitin: cnf::Tseitin::new(),
            pre_cache: HashMap::new(),
            n_solves: 0,
            n_blocking: 0,
        }
    }

    /// Preprocesses and Tseitin-encodes `t`, flushing any new variables
    /// and definition clauses into the solver, and returns its literal.
    fn encode_lit(&mut self, ctx: &mut Context, t: TermId) -> Lit {
        assert_eq!(ctx.sort(t), Sort::Bool, "assertions must be boolean");
        let r = preprocess(ctx, t, &mut self.pre_cache);
        let mut delta = Cnf { n_vars: self.sat.num_vars(), clauses: Vec::new() };
        let l = self.tseitin.lit(ctx, r, &mut delta);
        self.sat.ensure_vars(delta.n_vars);
        for c in delta.clauses {
            self.sat.add_clause(c);
        }
        l
    }

    /// Asserts `t` permanently (all later queries see it).
    pub fn assert(&mut self, ctx: &mut Context, t: TermId) {
        let l = self.encode_lit(ctx, t);
        self.sat.add_clause([l]);
    }

    /// A fresh activation literal, not tied to any term.
    pub fn activation(&mut self) -> Lit {
        self.sat.new_var().positive()
    }

    /// Asserts `guard → t`: the assertion is active exactly in queries
    /// that assume `guard`.
    pub fn assert_under(&mut self, ctx: &mut Context, guard: Lit, t: TermId) {
        let l = self.encode_lit(ctx, t);
        self.sat.add_clause([guard.negate(), l]);
    }

    /// Permanently deactivates a guard's assertions (unit `¬guard`; the
    /// solver simplifies the guarded clauses away).
    pub fn retire(&mut self, guard: Lit) {
        self.sat.add_clause([guard.negate()]);
    }

    /// Satisfiability of the permanent assertions plus the assumptions.
    /// Cheaper than [`Incremental::solve_under`]: no model is built.
    pub fn check_sat_assuming(&mut self, ctx: &Context, assumptions: &[Lit]) -> bool {
        self.solve_internal(ctx, assumptions).is_some()
    }

    /// Decides the permanent assertions plus the assumptions, with a
    /// model on `Sat`.
    pub fn solve_under(&mut self, ctx: &Context, assumptions: &[Lit]) -> SatResult {
        match self.solve_internal(ctx, assumptions) {
            None => SatResult::Unsat,
            Some((assignment, tm)) => {
                let mut bools = HashMap::new();
                for (&t, &l) in self.tseitin.map() {
                    let v = assignment[l.var().0 as usize];
                    bools.insert(t, if l.is_positive() { v } else { !v });
                }
                SatResult::Sat(Model { bools, ints: tm.ints, classes: tm.classes })
            }
        }
    }

    /// The DPLL(T) loop: boolean models from the SAT core, refuted by the
    /// theories until one is consistent or the core runs dry.
    fn solve_internal(
        &mut self,
        ctx: &Context,
        assumptions: &[Lit],
    ) -> Option<(Vec<bool>, TheoryModel)> {
        self.n_solves += 1;
        // Trace the SAT-core effort this query cost (deltas, so parallel
        // sessions on different threads stay independent).
        let traced = c4_obs::enabled();
        let (c0, d0, p0) = if traced {
            (self.sat.conflicts(), self.sat.decisions(), self.sat.propagations())
        } else {
            (0, 0, 0)
        };
        let out = self.solve_loop(ctx, assumptions);
        if traced {
            c4_obs::counter("sat_conflicts", self.sat.conflicts() - c0);
            c4_obs::counter("sat_decisions", self.sat.decisions() - d0);
            c4_obs::counter("sat_propagations", self.sat.propagations() - p0);
        }
        out
    }

    fn solve_loop(
        &mut self,
        ctx: &Context,
        assumptions: &[Lit],
    ) -> Option<(Vec<bool>, TheoryModel)> {
        loop {
            match self.sat.solve_under_assumptions(assumptions) {
                AssumeOutcome::Unsat(_) => return None,
                AssumeOutcome::Sat(assignment) => {
                    let atoms = self.tseitin.atoms();
                    let asserted: Vec<(TermId, bool)> =
                        atoms.iter().map(|&(t, v)| (t, assignment[v.0 as usize])).collect();
                    match theory::check(ctx, &asserted) {
                        TheoryResult::Consistent(tm) => return Some((assignment, tm)),
                        TheoryResult::Conflict(core) => {
                            // Block this combination of theory literals.
                            // The lemma is valid, not query-specific: it
                            // stays unguarded and serves every later query.
                            self.n_blocking += 1;
                            self.sat.add_clause(core.iter().map(|&i| {
                                let (_, var) = atoms[i];
                                var.lit(!asserted[i].1)
                            }));
                        }
                    }
                }
            }
        }
    }

    /// Solve calls answered so far.
    pub fn solves(&self) -> u64 {
        self.n_solves
    }

    /// Theory-conflict blocking clauses learnt so far (persistent).
    pub fn blocking_clauses(&self) -> u64 {
        self.n_blocking
    }

    /// Learnt CDCL clauses currently retained by the SAT core.
    pub fn learnt_count(&self) -> usize {
        self.sat.learnt_count()
    }

    /// The underlying SAT solver (for diagnostics and tests).
    pub fn sat(&self) -> &SatSolver {
        &self.sat
    }
}

/// Rewrites away constructs the theories do not handle natively:
/// `Eq` over `Int` (→ two `Le`), `Eq` over `Bool` (→ `Iff`), `Distinct`
/// (→ pairwise negated equalities).
fn preprocess(ctx: &mut Context, t: TermId, cache: &mut HashMap<TermId, TermId>) -> TermId {
    if let Some(&r) = cache.get(&t) {
        return r;
    }
    let result = match ctx.data(t).clone() {
        TermData::Eq(a, b) => match ctx.sort(a) {
            Sort::Int => {
                let le1 = ctx.le(a, b);
                let le2 = ctx.le(b, a);
                ctx.and([le1, le2])
            }
            Sort::Bool => {
                let a = preprocess(ctx, a, cache);
                let b = preprocess(ctx, b, cache);
                let iff = ctx.iff(a, b);
                preprocess(ctx, iff, cache)
            }
            Sort::Uninterpreted(_) => t,
        },
        TermData::Distinct(xs) => {
            let mut conj = Vec::new();
            for i in 0..xs.len() {
                for j in (i + 1)..xs.len() {
                    let e = ctx.eq(xs[i], xs[j]);
                    let e = preprocess(ctx, e, cache);
                    conj.push(ctx.not(e));
                }
            }
            ctx.and(conj)
        }
        TermData::Not(a) => {
            let a = preprocess(ctx, a, cache);
            ctx.not(a)
        }
        TermData::And(xs) => {
            let ys: Vec<TermId> = xs.iter().map(|&x| preprocess(ctx, x, cache)).collect();
            ctx.and(ys)
        }
        TermData::Or(xs) => {
            let ys: Vec<TermId> = xs.iter().map(|&x| preprocess(ctx, x, cache)).collect();
            ctx.or(ys)
        }
        TermData::Implies(a, b) => {
            let a = preprocess(ctx, a, cache);
            let b = preprocess(ctx, b, cache);
            ctx.implies(a, b)
        }
        TermData::Iff(a, b) => {
            let a = preprocess(ctx, a, cache);
            let b = preprocess(ctx, b, cache);
            ctx.iff(a, b)
        }
        _ => t,
    };
    cache.insert(t, result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euf_chain_unsat() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let vs: Vec<TermId> = (0..5).map(|i| ctx.var(format!("v{i}"), s)).collect();
        let mut conj: Vec<TermId> = (0..4).map(|i| ctx.eq(vs[i], vs[i + 1])).collect();
        let e = ctx.eq(vs[0], vs[4]);
        conj.push(ctx.not(e));
        let f = ctx.and(conj);
        assert!(!ctx.solve(&[f]).is_sat());
    }

    #[test]
    fn int_equality_is_rewritten() {
        let mut ctx = Context::new();
        let i = ctx.var("i", Sort::Int);
        let j = ctx.var("j", Sort::Int);
        let eq = ctx.eq(i, j);
        let lt = ctx.lt(i, j);
        assert!(!ctx.solve(&[eq, lt]).is_sat());
        let neq = ctx.not(eq);
        let SatResult::Sat(m) = ctx.solve(&[neq]) else { panic!("sat expected") };
        assert_ne!(m.int_value(i), m.int_value(j));
    }

    #[test]
    fn distinct_rewriting() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let x = ctx.var("x", s);
        let y = ctx.var("y", s);
        let z = ctx.var("z", s);
        let d = ctx.distinct(vec![x, y, z]);
        let exy = ctx.eq(x, y);
        assert!(!ctx.solve(&[d, exy]).is_sat());
        let SatResult::Sat(m) = ctx.solve(&[d]) else { panic!("sat expected") };
        assert_eq!(m.eval_eq(x, y), Some(false));
        assert_eq!(m.eval_eq(y, z), Some(false));
    }

    #[test]
    fn boolean_equality_as_iff() {
        let mut ctx = Context::new();
        let a = ctx.var("a", Sort::Bool);
        let b = ctx.var("b", Sort::Bool);
        let e = ctx.eq(a, b);
        let nb = ctx.not(b);
        assert!(!ctx.solve(&[e, a, nb]).is_sat());
        assert!(ctx.solve(&[e, a, b]).is_sat());
    }

    #[test]
    fn mixed_theories_with_boolean_structure() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let x = ctx.var("x", s);
        let y = ctx.var("y", s);
        let i = ctx.var("i", Sort::Int);
        let ten = ctx.int(10);
        // (x=y → i<10) ∧ (x≠y → 10<i) ∧ i=10 is unsat.
        let exy = ctx.eq(x, y);
        let lt10 = ctx.lt(i, ten);
        let gt10 = ctx.lt(ten, i);
        let nexy = ctx.not(exy);
        let i1 = ctx.implies(exy, lt10);
        let i2 = ctx.implies(nexy, gt10);
        let eq10 = ctx.eq(i, ten);
        assert!(!ctx.solve(&[i1, i2, eq10]).is_sat());
        // Dropping the pin makes it sat and the model obeys the implication.
        let SatResult::Sat(m) = ctx.solve(&[i1, i2]) else { panic!("sat expected") };
        let xy_equal = m.eval_eq(x, y).unwrap();
        let iv = m.int_value(i).unwrap();
        if xy_equal {
            assert!(iv < 10);
        } else {
            assert!(iv > 10);
        }
    }

    #[test]
    fn model_covers_boolean_subterms() {
        let mut ctx = Context::new();
        let a = ctx.var("a", Sort::Bool);
        let b = ctx.var("b", Sort::Bool);
        let or = ctx.or([a, b]);
        let na = ctx.not(a);
        let SatResult::Sat(m) = ctx.solve(&[or, na]) else { panic!("sat expected") };
        assert_eq!(m.bool_value(a), Some(false));
        assert_eq!(m.bool_value(b), Some(true));
        assert_eq!(m.bool_value(or), Some(true));
    }

    #[test]
    fn functions_through_full_pipeline() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let f = ctx.func("f", vec![s], s);
        let x = ctx.var("x", s);
        let y = ctx.var("y", s);
        let fx = ctx.app(f, vec![x]);
        let fy = ctx.app(f, vec![y]);
        let exy = ctx.eq(x, y);
        let efxfy = ctx.eq(fx, fy);
        let nefxfy = ctx.not(efxfy);
        assert!(!ctx.solve(&[exy, nefxfy]).is_sat());
        assert!(ctx.solve(&[efxfy, exy]).is_sat());
    }

    #[test]
    fn incremental_session_guards_and_retires() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let x = ctx.var("x", s);
        let y = ctx.var("y", s);
        let z = ctx.var("z", s);
        let xy = ctx.eq(x, y);
        let yz = ctx.eq(y, z);
        let xz = ctx.eq(x, z);
        let nxz = ctx.not(xz);
        let mut session = Incremental::new();
        // Permanent: x = y and y = z.
        session.assert(&mut ctx, xy);
        session.assert(&mut ctx, yz);
        // Query 1 under guard g1: x ≠ z — transitivity refutes it.
        let g1 = session.activation();
        session.assert_under(&mut ctx, g1, nxz);
        assert!(!session.solve_under(&ctx, &[g1]).is_sat());
        session.retire(g1);
        // Query 2 under guard g2: x = z — consistent; the retired g1
        // assertion must not leak in.
        let g2 = session.activation();
        session.assert_under(&mut ctx, g2, xz);
        let SatResult::Sat(m) = session.solve_under(&ctx, &[g2]) else {
            panic!("retired guard must not constrain later queries")
        };
        assert_eq!(m.eval_eq(x, z), Some(true));
        assert_eq!(session.solves(), 2);
    }

    /// Theory-conflict blocking clauses persist across incremental calls:
    /// a lemma learnt refuting one query's boolean model is not
    /// re-derived when a later query proposes the same assignment.
    #[test]
    fn theory_blocking_clauses_survive_across_calls() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let vs: Vec<TermId> = (0..5).map(|i| ctx.var(format!("v{i}"), s)).collect();
        // Permanent chain v0 = v1 = … = v4 plus a free boolean choice the
        // guards toggle, so each query re-enumerates boolean models.
        let mut session = Incremental::new();
        for w in vs.windows(2) {
            let e = ctx.eq(w[0], w[1]);
            session.assert(&mut ctx, e);
        }
        let e04 = ctx.eq(vs[0], vs[4]);
        let ne04 = ctx.not(e04);
        let g1 = session.activation();
        session.assert_under(&mut ctx, g1, ne04);
        assert!(!session.solve_under(&ctx, &[g1]).is_sat());
        let after_first = session.blocking_clauses();
        assert!(after_first > 0, "refuting the chain needs theory lemmas");
        // The same query under a fresh guard: every boolean model it could
        // propose is already blocked, so no new lemmas are learnt.
        let g2 = session.activation();
        session.assert_under(&mut ctx, g2, ne04);
        assert!(!session.solve_under(&ctx, &[g2]).is_sat());
        assert_eq!(
            session.blocking_clauses(),
            after_first,
            "persisted blocking clauses must not be re-derived"
        );
    }

    /// The one-shot `Context::solve` and a reused incremental session give
    /// the same verdicts over a mixed query sequence.
    #[test]
    fn incremental_agrees_with_one_shot() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let x = ctx.var("x", s);
        let y = ctx.var("y", s);
        let i = ctx.var("i", Sort::Int);
        let ten = ctx.int(10);
        let exy = ctx.eq(x, y);
        let nexy = ctx.not(exy);
        let lt = ctx.lt(i, ten);
        let nlt = ctx.not(lt);
        let base = vec![ctx.implies(exy, lt)];
        let queries: Vec<Vec<TermId>> = vec![
            vec![exy, nlt],
            vec![exy, lt],
            vec![nexy, nlt],
            vec![exy],
            vec![exy, nlt],
        ];
        let mut session = Incremental::new();
        for &b in &base {
            session.assert(&mut ctx, b);
        }
        for q in &queries {
            let guard = session.activation();
            for &t in q {
                session.assert_under(&mut ctx, guard, t);
            }
            let inc = session.check_sat_assuming(&ctx, &[guard]);
            session.retire(guard);
            let mut all = base.clone();
            all.extend(q.iter().copied());
            let one_shot = ctx.solve(&all).is_sat();
            assert_eq!(inc, one_shot, "verdicts diverged on {q:?}");
        }
    }

    #[test]
    fn blocking_loop_terminates_on_hard_combination() {
        // Several interacting atoms that force multiple theory refutations.
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let vs: Vec<TermId> = (0..4).map(|i| ctx.var(format!("v{i}"), s)).collect();
        let iv: Vec<TermId> = (0..4).map(|i| ctx.var(format!("i{i}"), Sort::Int)).collect();
        let mut parts = Vec::new();
        // Pigeonhole-ish: all vs distinct, but each equal to one of two
        // "pigeons".
        let d = ctx.distinct(vs.clone());
        parts.push(d);
        let p = ctx.var("p", s);
        let q = ctx.var("q", s);
        for &v in &vs {
            let ep = ctx.eq(v, p);
            let eq_ = ctx.eq(v, q);
            parts.push(ctx.or([ep, eq_]));
        }
        // Plus an integer chain to exercise arith blocking.
        for w in iv.windows(2) {
            parts.push(ctx.lt(w[0], w[1]));
        }
        let f = ctx.and(parts);
        assert!(!ctx.solve(&[f]).is_sat());
    }
}
