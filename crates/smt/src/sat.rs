//! A CDCL SAT solver: two-watched-literal propagation, first-UIP conflict
//! analysis, VSIDS-style branching with phase saving, geometric restarts.

/// A propositional variable (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// Literal with the given polarity.
    pub fn lit(self, value: bool) -> Lit {
        if value {
            self.positive()
        } else {
            self.negative()
        }
    }
}

/// A literal: a variable with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub u32);

impl Lit {
    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

/// A CNF formula under construction.
#[derive(Debug, Default, Clone)]
pub struct Cnf {
    /// Number of variables.
    pub n_vars: u32,
    /// The clauses.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn fresh(&mut self) -> Var {
        let v = Var(self.n_vars);
        self.n_vars += 1;
        v
    }

    /// Adds a clause.
    pub fn add(&mut self, lits: impl IntoIterator<Item = Lit>) {
        self.clauses.push(lits.into_iter().collect());
    }
}

/// Result of a SAT call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatOutcome {
    /// Satisfiable; the model assigns every variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    Undef,
    True,
    False,
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
}

/// The CDCL solver. Supports repeated [`SatSolver::solve`] calls
/// interleaved with [`SatSolver::add_clause`] (for lazy-SMT blocking
/// clauses).
#[derive(Debug)]
pub struct SatSolver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<usize>>, // lit index -> clause indices
    values: Vec<Value>,       // per var
    levels: Vec<u32>,
    reasons: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    var_inc: f64,
    saved_phase: Vec<bool>,
    unsat: bool,
    n_conflicts: u64,
    n_decisions: u64,
}

impl SatSolver {
    /// Creates a solver over `n_vars` variables.
    pub fn new(n_vars: u32) -> Self {
        let n = n_vars as usize;
        SatSolver {
            clauses: Vec::new(),
            watches: vec![Vec::new(); 2 * n],
            values: vec![Value::Undef; n],
            levels: vec![0; n],
            reasons: vec![None; n],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            activity: vec![0.0; n],
            var_inc: 1.0,
            saved_phase: vec![false; n],
            unsat: false,
            n_conflicts: 0,
            n_decisions: 0,
        }
    }

    /// Builds a solver from a CNF.
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut s = SatSolver::new(cnf.n_vars);
        for c in &cnf.clauses {
            s.add_clause(c.iter().copied());
        }
        s
    }

    /// Number of conflicts encountered so far.
    pub fn conflicts(&self) -> u64 {
        self.n_conflicts
    }

    /// Number of decisions made so far.
    pub fn decisions(&self) -> u64 {
        self.n_decisions
    }

    /// Number of clauses learnt from conflicts so far.
    pub fn learnt_count(&self) -> usize {
        self.clauses.iter().filter(|c| c.learnt).count()
    }

    fn value_lit(&self, l: Lit) -> Value {
        match self.values[l.var().0 as usize] {
            Value::Undef => Value::Undef,
            Value::True => {
                if l.is_positive() {
                    Value::True
                } else {
                    Value::False
                }
            }
            Value::False => {
                if l.is_positive() {
                    Value::False
                } else {
                    Value::True
                }
            }
        }
    }

    fn level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Option<usize>) -> bool {
        match self.value_lit(l) {
            Value::True => true,
            Value::False => false,
            Value::Undef => {
                let v = l.var().0 as usize;
                self.values[v] = if l.is_positive() { Value::True } else { Value::False };
                self.levels[v] = self.level();
                self.reasons[v] = reason;
                self.saved_phase[v] = l.is_positive();
                self.trail.push(l);
                true
            }
        }
    }

    /// Adds a clause. May be called between `solve` calls; the solver
    /// backtracks to the root level first.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        self.backtrack(0);
        let mut c: Vec<Lit> = lits.into_iter().collect();
        c.sort();
        c.dedup();
        // Tautology?
        if c.windows(2).any(|w| w[0].var() == w[1].var()) {
            return;
        }
        // Remove root-level falsified literals; detect satisfied clauses.
        c.retain(|&l| {
            !(self.value_lit(l) == Value::False)
        });
        if c.iter().any(|&l| self.value_lit(l) == Value::True) {
            return;
        }
        match c.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(c[0], None) {
                    self.unsat = true;
                }
            }
            _ => {
                let idx = self.clauses.len();
                self.watches[c[0].negate().index()].push(idx);
                self.watches[c[1].negate().index()].push(idx);
                self.clauses.push(Clause { lits: c, learnt: false });
            }
        }
    }

    fn attach_learnt(&mut self, c: Vec<Lit>) -> usize {
        let idx = self.clauses.len();
        self.watches[c[0].negate().index()].push(idx);
        self.watches[c[1].negate().index()].push(idx);
        self.clauses.push(Clause { lits: c, learnt: true });
        idx
    }

    fn propagate(&mut self) -> Option<usize> {
        while self.prop_head < self.trail.len() {
            let l = self.trail[self.prop_head];
            self.prop_head += 1;
            // Clauses watching ¬l must be visited: they are in watches[l].
            let mut i = 0;
            let mut watch_list = std::mem::take(&mut self.watches[l.index()]);
            while i < watch_list.len() {
                let ci = watch_list[i];
                let false_lit = l.negate();
                // Normalize: put the false literal at position 1.
                {
                    let cl = &mut self.clauses[ci];
                    if cl.lits[0] == false_lit {
                        cl.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[ci].lits[0];
                if self.value_lit(first) == Value::True {
                    i += 1;
                    continue;
                }
                // Find a new literal to watch.
                let mut moved = false;
                let len = self.clauses[ci].lits.len();
                for k in 2..len {
                    let lk = self.clauses[ci].lits[k];
                    if self.value_lit(lk) != Value::False {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[lk.negate().index()].push(ci);
                        watch_list.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflict.
                if !self.enqueue(first, Some(ci)) {
                    // Conflict: restore remaining watches.
                    self.watches[l.index()].extend(watch_list.drain(..));
                    // Note: the drained list includes already-processed
                    // entries; watches may contain duplicates, which is
                    // harmless, but avoid losing any.
                    return Some(ci);
                }
                i += 1;
            }
            self.watches[l.index()].extend(watch_list);
        }
        None
    }

    fn bump(&mut self, v: Var) {
        self.activity[v.0 as usize] += self.var_inc;
        if self.activity[v.0 as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn analyze(&mut self, mut conflict: usize) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for UIP
        let mut seen = vec![false; self.values.len()];
        let mut counter = 0usize;
        let mut trail_idx = self.trail.len();
        let mut resolve_var: Option<Var> = None;
        loop {
            // Visit the literals of the conflicting/reason clause, skipping
            // the literal currently being resolved on.
            let lits: Vec<Lit> = self.clauses[conflict].lits.clone();
            for &q in &lits {
                if Some(q.var()) == resolve_var {
                    continue;
                }
                let v = q.var().0 as usize;
                if !seen[v] && self.levels[v] > 0 {
                    seen[v] = true;
                    self.bump(q.var());
                    if self.levels[v] == self.level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Pick the next literal to resolve on from the trail.
            loop {
                trail_idx -= 1;
                let p = self.trail[trail_idx];
                if seen[p.var().0 as usize] {
                    seen[p.var().0 as usize] = false;
                    counter -= 1;
                    if counter == 0 {
                        learnt[0] = p.negate();
                        // Put the second-highest-level literal at position 1
                        // (watch invariant after backtracking) and compute
                        // the backtrack level.
                        if learnt.len() > 1 {
                            let max_i = (1..learnt.len())
                                .max_by_key(|&i| self.levels[learnt[i].var().0 as usize])
                                .expect("non-empty tail");
                            learnt.swap(1, max_i);
                            let bt = self.levels[learnt[1].var().0 as usize];
                            return (learnt, bt);
                        }
                        return (learnt, 0);
                    }
                    resolve_var = Some(p.var());
                    conflict = self.reasons[p.var().0 as usize]
                        .expect("non-decision literal has a reason");
                    break;
                }
            }
        }
    }

    fn backtrack(&mut self, level: u32) {
        while self.level() > level {
            let lim = self.trail_lim.pop().expect("trail limit");
            for &l in &self.trail[lim..] {
                let v = l.var().0 as usize;
                self.values[v] = Value::Undef;
                self.reasons[v] = None;
            }
            self.trail.truncate(lim);
        }
        self.prop_head = self.prop_head.min(self.trail.len());
    }

    fn pick_branch(&mut self) -> Option<Var> {
        let mut best: Option<(Var, f64)> = None;
        for (i, &v) in self.values.iter().enumerate() {
            if v == Value::Undef {
                let a = self.activity[i];
                if best.map_or(true, |(_, ba)| a > ba) {
                    best = Some((Var(i as u32), a));
                }
            }
        }
        best.map(|(v, _)| v)
    }

    /// Solves the current formula. Returns a full model or `Unsat`.
    ///
    /// After a `Sat` answer the solver is at the root level; blocking
    /// clauses can be added and `solve` called again.
    pub fn solve(&mut self) -> SatOutcome {
        if self.unsat {
            return SatOutcome::Unsat;
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SatOutcome::Unsat;
        }
        let mut restart_limit = 100u64;
        let mut conflicts_since_restart = 0u64;
        loop {
            if let Some(conflict) = self.propagate() {
                self.n_conflicts += 1;
                conflicts_since_restart += 1;
                if self.level() == 0 {
                    self.unsat = true;
                    return SatOutcome::Unsat;
                }
                let (learnt, bt) = self.analyze(conflict);
                self.backtrack(bt);
                self.var_inc *= 1.0 / 0.95;
                if learnt.len() == 1 {
                    if !self.enqueue(learnt[0], None) {
                        self.unsat = true;
                        return SatOutcome::Unsat;
                    }
                } else {
                    let ci = self.attach_learnt(learnt.clone());
                    if !self.enqueue(learnt[0], Some(ci)) {
                        self.unsat = true;
                        return SatOutcome::Unsat;
                    }
                }
                if conflicts_since_restart >= restart_limit {
                    conflicts_since_restart = 0;
                    restart_limit = restart_limit * 3 / 2;
                    self.backtrack(0);
                }
            } else {
                match self.pick_branch() {
                    None => {
                        let model: Vec<bool> =
                            self.values.iter().map(|&v| v == Value::True).collect();
                        self.backtrack(0);
                        return SatOutcome::Sat(model);
                    }
                    Some(v) => {
                        self.n_decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.saved_phase[v.0 as usize];
                        let ok = self.enqueue(v.lit(phase), None);
                        debug_assert!(ok);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: i32) -> Lit {
        let var = Var((v.unsigned_abs() - 1) as u32);
        var.lit(v > 0)
    }

    fn solve(n: u32, clauses: &[&[i32]]) -> SatOutcome {
        let mut s = SatSolver::new(n);
        for c in clauses {
            s.add_clause(c.iter().map(|&v| lit(v)));
        }
        s.solve()
    }

    #[test]
    fn trivial_sat_unsat() {
        assert!(matches!(solve(1, &[&[1]]), SatOutcome::Sat(_)));
        assert!(matches!(solve(1, &[&[1], &[-1]]), SatOutcome::Unsat));
        assert!(matches!(solve(0, &[]), SatOutcome::Sat(_)));
        assert!(matches!(solve(1, &[&[]]), SatOutcome::Unsat));
    }

    #[test]
    fn unit_propagation_chain() {
        // 1, ¬1∨2, ¬2∨3 ⟹ 3.
        let out = solve(3, &[&[1], &[-1, 2], &[-2, 3]]);
        let SatOutcome::Sat(m) = out else { panic!("expected sat") };
        assert!(m[0] && m[1] && m[2]);
    }

    #[test]
    fn simple_conflict_learning() {
        // (1∨2) ∧ (1∨¬2) ∧ (¬1∨3) ∧ (¬1∨¬3) is unsat.
        assert!(matches!(solve(3, &[&[1, 2], &[1, -2], &[-1, 3], &[-1, -3]]), SatOutcome::Unsat));
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p_ij: pigeon i in hole j; vars 1..=6 (i*2+j).
        let v = |i: i32, j: i32| i * 2 + j + 1; // i∈0..3, j∈0..2
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![v(i, 0), v(i, 1)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    clauses.push(vec![-v(i1, j), -v(i2, j)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        assert!(matches!(solve(6, &refs), SatOutcome::Unsat));
    }

    #[test]
    fn blocking_clauses_enumerate_models() {
        // 2 free variables: exactly 4 models.
        let mut s = SatSolver::new(2);
        s.add_clause([lit(1), lit(-1)]); // tautology, ignored
        let mut count = 0;
        loop {
            match s.solve() {
                SatOutcome::Sat(m) => {
                    count += 1;
                    assert!(count <= 4, "more models than possible");
                    s.add_clause((0..2).map(|i| Var(i as u32).lit(!m[i])));
                }
                SatOutcome::Unsat => break,
            }
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..300 {
            let n = rng.gen_range(3..9);
            let m = rng.gen_range(1..30);
            let clauses: Vec<Vec<i32>> = (0..m)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = rng.gen_range(1..=n) as i32;
                            if rng.gen_bool(0.5) {
                                v
                            } else {
                                -v
                            }
                        })
                        .collect()
                })
                .collect();
            // Brute force.
            let mut brute_sat = false;
            'outer: for bits in 0..(1u32 << n) {
                for c in &clauses {
                    let ok = c.iter().any(|&l| {
                        let v = (l.unsigned_abs() - 1) as u32;
                        let val = bits & (1 << v) != 0;
                        if l > 0 {
                            val
                        } else {
                            !val
                        }
                    });
                    if !ok {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
            let out = solve(n as u32, &refs);
            match out {
                SatOutcome::Sat(model) => {
                    assert!(brute_sat, "solver said sat, brute force disagrees: {clauses:?}");
                    for c in &clauses {
                        assert!(
                            c.iter().any(|&l| {
                                let v = (l.unsigned_abs() - 1) as usize;
                                if l > 0 {
                                    model[v]
                                } else {
                                    !model[v]
                                }
                            }),
                            "model does not satisfy {c:?}"
                        );
                    }
                }
                SatOutcome::Unsat => {
                    assert!(!brute_sat, "solver said unsat, brute force found a model: {clauses:?}");
                }
            }
        }
    }
}
