//! A CDCL SAT solver: two-watched-literal propagation, first-UIP conflict
//! analysis, VSIDS-style branching with phase saving, geometric restarts.

/// A propositional variable (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// Literal with the given polarity.
    pub fn lit(self, value: bool) -> Lit {
        if value {
            self.positive()
        } else {
            self.negative()
        }
    }
}

/// A literal: a variable with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub u32);

impl Lit {
    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

/// A CNF formula under construction.
#[derive(Debug, Default, Clone)]
pub struct Cnf {
    /// Number of variables.
    pub n_vars: u32,
    /// The clauses.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn fresh(&mut self) -> Var {
        let v = Var(self.n_vars);
        self.n_vars += 1;
        v
    }

    /// Adds a clause.
    pub fn add(&mut self, lits: impl IntoIterator<Item = Lit>) {
        self.clauses.push(lits.into_iter().collect());
    }
}

/// Result of a SAT call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatOutcome {
    /// Satisfiable; the model assigns every variable.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

/// Result of a [`SatSolver::solve_under_assumptions`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssumeOutcome {
    /// Satisfiable under the assumptions; the model assigns every variable.
    Sat(Vec<bool>),
    /// Unsatisfiable under the assumptions. The payload is a conflict
    /// subset of the assumptions (not guaranteed minimal); it is empty iff
    /// the formula is unsatisfiable regardless of the assumptions.
    Unsat(Vec<Lit>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    Undef,
    True,
    False,
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    /// Bump-and-decay usefulness score (learnt clauses only).
    activity: f64,
    /// Literal-block distance at learn time (learnt clauses only).
    lbd: u32,
}

/// The CDCL solver. Supports repeated [`SatSolver::solve`] /
/// [`SatSolver::solve_under_assumptions`] calls interleaved with
/// [`SatSolver::add_clause`] and [`SatSolver::new_var`] (for lazy-SMT
/// blocking clauses and incremental sessions); learnt clauses are
/// retained between calls and pruned by activity when the database
/// outgrows its budget.
#[derive(Debug)]
pub struct SatSolver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<usize>>, // lit index -> clause indices
    values: Vec<Value>,       // per var
    levels: Vec<u32>,
    reasons: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    var_inc: f64,
    saved_phase: Vec<bool>,
    unsat: bool,
    n_conflicts: u64,
    n_decisions: u64,
    n_propagations: u64,
    n_learnt: usize,
    cla_inc: f64,
    max_learnts: usize,
    n_reduces: u64,
}

impl SatSolver {
    /// Creates a solver over `n_vars` variables.
    pub fn new(n_vars: u32) -> Self {
        let n = n_vars as usize;
        SatSolver {
            clauses: Vec::new(),
            watches: vec![Vec::new(); 2 * n],
            values: vec![Value::Undef; n],
            levels: vec![0; n],
            reasons: vec![None; n],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            activity: vec![0.0; n],
            var_inc: 1.0,
            saved_phase: vec![false; n],
            unsat: false,
            n_conflicts: 0,
            n_decisions: 0,
            n_propagations: 0,
            n_learnt: 0,
            cla_inc: 1.0,
            max_learnts: 0,
            n_reduces: 0,
        }
    }

    /// Allocates a fresh variable (usable between solve calls).
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.values.len() as u32);
        self.values.push(Value::Undef);
        self.levels.push(0);
        self.reasons.push(None);
        self.activity.push(0.0);
        self.saved_phase.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Grows the variable space to at least `n_vars` variables.
    pub fn ensure_vars(&mut self, n_vars: u32) {
        while (self.values.len() as u32) < n_vars {
            self.new_var();
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> u32 {
        self.values.len() as u32
    }

    /// Builds a solver from a CNF.
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut s = SatSolver::new(cnf.n_vars);
        for c in &cnf.clauses {
            s.add_clause(c.iter().copied());
        }
        s
    }

    /// Number of conflicts encountered so far.
    pub fn conflicts(&self) -> u64 {
        self.n_conflicts
    }

    /// Number of decisions made so far.
    pub fn decisions(&self) -> u64 {
        self.n_decisions
    }

    /// Number of literals propagated so far.
    pub fn propagations(&self) -> u64 {
        self.n_propagations
    }

    /// Number of learnt clauses currently in the database (maintained
    /// counter; root-level learnt units are enqueued, not stored, and are
    /// not counted).
    pub fn learnt_count(&self) -> usize {
        debug_assert_eq!(self.n_learnt, self.clauses.iter().filter(|c| c.learnt).count());
        self.n_learnt
    }

    /// Number of learnt-database reductions performed so far.
    pub fn reductions(&self) -> u64 {
        self.n_reduces
    }

    /// Overrides the learnt-clause budget that triggers database
    /// reduction (`0` restores the adaptive default, chosen at the next
    /// solve call). The budget still grows geometrically after each
    /// reduction.
    pub fn set_learnt_budget(&mut self, n: usize) {
        self.max_learnts = n;
    }

    fn value_lit(&self, l: Lit) -> Value {
        match self.values[l.var().0 as usize] {
            Value::Undef => Value::Undef,
            Value::True => {
                if l.is_positive() {
                    Value::True
                } else {
                    Value::False
                }
            }
            Value::False => {
                if l.is_positive() {
                    Value::False
                } else {
                    Value::True
                }
            }
        }
    }

    fn level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Option<usize>) -> bool {
        match self.value_lit(l) {
            Value::True => true,
            Value::False => false,
            Value::Undef => {
                let v = l.var().0 as usize;
                self.values[v] = if l.is_positive() { Value::True } else { Value::False };
                self.levels[v] = self.level();
                self.reasons[v] = reason;
                self.saved_phase[v] = l.is_positive();
                self.trail.push(l);
                true
            }
        }
    }

    /// Adds a clause. May be called between `solve` calls; the solver
    /// backtracks to the root level first.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        self.backtrack(0);
        let mut c: Vec<Lit> = lits.into_iter().collect();
        c.sort();
        c.dedup();
        // Tautology?
        if c.windows(2).any(|w| w[0].var() == w[1].var()) {
            return;
        }
        // Remove root-level falsified literals; detect satisfied clauses.
        c.retain(|&l| {
            !(self.value_lit(l) == Value::False)
        });
        if c.iter().any(|&l| self.value_lit(l) == Value::True) {
            return;
        }
        match c.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(c[0], None) {
                    self.unsat = true;
                }
            }
            _ => {
                let idx = self.clauses.len();
                self.watches[c[0].negate().index()].push(idx);
                self.watches[c[1].negate().index()].push(idx);
                self.clauses.push(Clause { lits: c, learnt: false, activity: 0.0, lbd: 0 });
            }
        }
    }

    /// Literal-block distance: the number of distinct decision levels
    /// among a clause's literals (Glucose's quality measure; lower is
    /// better).
    fn lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> =
            lits.iter().map(|l| self.levels[l.var().0 as usize]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn attach_learnt(&mut self, c: Vec<Lit>) -> usize {
        let idx = self.clauses.len();
        self.watches[c[0].negate().index()].push(idx);
        self.watches[c[1].negate().index()].push(idx);
        let lbd = self.lbd(&c);
        self.clauses.push(Clause { lits: c, learnt: true, activity: self.cla_inc, lbd });
        self.n_learnt += 1;
        idx
    }

    fn bump_clause(&mut self, ci: usize) {
        let c = &mut self.clauses[ci];
        if !c.learnt {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Shrinks the learnt-clause database to roughly half: drops the
    /// lowest-activity learnt clauses, always keeping binary clauses,
    /// clauses with LBD ≤ 2, and locked clauses (reasons of current
    /// assignments). Rebuilds watches and remaps reasons.
    fn reduce_learnts(&mut self) {
        let mut locked = vec![false; self.clauses.len()];
        for r in &self.reasons {
            if let Some(ci) = r {
                locked[*ci] = true;
            }
        }
        let mut cands: Vec<(f64, usize)> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|&(i, c)| c.learnt && !locked[i] && c.lits.len() > 2 && c.lbd > 2)
            .map(|(i, c)| (c.activity, i))
            .collect();
        cands.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let n_drop = cands.len().min(self.n_learnt / 2);
        if n_drop == 0 {
            // Nothing removable: raise the budget so we don't re-enter on
            // every conflict.
            self.max_learnts += self.max_learnts / 2;
            return;
        }
        self.n_reduces += 1;
        let mut remove = vec![false; self.clauses.len()];
        for &(_, i) in cands.iter().take(n_drop) {
            remove[i] = true;
        }
        let old = std::mem::take(&mut self.clauses);
        let mut new_idx = vec![usize::MAX; old.len()];
        for (i, c) in old.into_iter().enumerate() {
            if remove[i] {
                continue;
            }
            new_idx[i] = self.clauses.len();
            self.clauses.push(c);
        }
        self.n_learnt -= n_drop;
        for r in &mut self.reasons {
            if let Some(ci) = r {
                debug_assert_ne!(new_idx[*ci], usize::MAX, "locked clause removed");
                *ci = new_idx[*ci];
            }
        }
        for w in &mut self.watches {
            w.clear();
        }
        for (i, c) in self.clauses.iter().enumerate() {
            self.watches[c.lits[0].negate().index()].push(i);
            self.watches[c.lits[1].negate().index()].push(i);
        }
        // Geometric growth keeps reductions rare as the session ages.
        self.max_learnts += self.max_learnts / 2;
    }

    fn propagate(&mut self) -> Option<usize> {
        while self.prop_head < self.trail.len() {
            let l = self.trail[self.prop_head];
            self.prop_head += 1;
            // Clauses watching ¬l must be visited: they are in watches[l].
            let mut i = 0;
            let mut watch_list = std::mem::take(&mut self.watches[l.index()]);
            while i < watch_list.len() {
                let ci = watch_list[i];
                let false_lit = l.negate();
                // Normalize: put the false literal at position 1.
                {
                    let cl = &mut self.clauses[ci];
                    if cl.lits[0] == false_lit {
                        cl.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[ci].lits[0];
                if self.value_lit(first) == Value::True {
                    i += 1;
                    continue;
                }
                // Find a new literal to watch.
                let mut moved = false;
                let len = self.clauses[ci].lits.len();
                for k in 2..len {
                    let lk = self.clauses[ci].lits[k];
                    if self.value_lit(lk) != Value::False {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[lk.negate().index()].push(ci);
                        watch_list.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflict.
                self.n_propagations += 1;
                if !self.enqueue(first, Some(ci)) {
                    // Conflict: restore remaining watches.
                    self.watches[l.index()].extend(watch_list.drain(..));
                    // Note: the drained list includes already-processed
                    // entries; watches may contain duplicates, which is
                    // harmless, but avoid losing any.
                    return Some(ci);
                }
                i += 1;
            }
            self.watches[l.index()].extend(watch_list);
        }
        None
    }

    fn bump(&mut self, v: Var) {
        self.activity[v.0 as usize] += self.var_inc;
        if self.activity[v.0 as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn analyze(&mut self, mut conflict: usize) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for UIP
        let mut seen = vec![false; self.values.len()];
        let mut counter = 0usize;
        let mut trail_idx = self.trail.len();
        let mut resolve_var: Option<Var> = None;
        loop {
            // Visit the literals of the conflicting/reason clause, skipping
            // the literal currently being resolved on.
            self.bump_clause(conflict);
            let lits: Vec<Lit> = self.clauses[conflict].lits.clone();
            for &q in &lits {
                if Some(q.var()) == resolve_var {
                    continue;
                }
                let v = q.var().0 as usize;
                if !seen[v] && self.levels[v] > 0 {
                    seen[v] = true;
                    self.bump(q.var());
                    if self.levels[v] == self.level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Pick the next literal to resolve on from the trail.
            loop {
                trail_idx -= 1;
                let p = self.trail[trail_idx];
                if seen[p.var().0 as usize] {
                    seen[p.var().0 as usize] = false;
                    counter -= 1;
                    if counter == 0 {
                        learnt[0] = p.negate();
                        // Put the second-highest-level literal at position 1
                        // (watch invariant after backtracking) and compute
                        // the backtrack level.
                        if learnt.len() > 1 {
                            let max_i = (1..learnt.len())
                                .max_by_key(|&i| self.levels[learnt[i].var().0 as usize])
                                .expect("non-empty tail");
                            learnt.swap(1, max_i);
                            let bt = self.levels[learnt[1].var().0 as usize];
                            return (learnt, bt);
                        }
                        return (learnt, 0);
                    }
                    resolve_var = Some(p.var());
                    conflict = self.reasons[p.var().0 as usize]
                        .expect("non-decision literal has a reason");
                    break;
                }
            }
        }
    }

    fn backtrack(&mut self, level: u32) {
        while self.level() > level {
            let lim = self.trail_lim.pop().expect("trail limit");
            for &l in &self.trail[lim..] {
                let v = l.var().0 as usize;
                self.values[v] = Value::Undef;
                self.reasons[v] = None;
            }
            self.trail.truncate(lim);
        }
        self.prop_head = self.prop_head.min(self.trail.len());
    }

    fn pick_branch(&mut self) -> Option<Var> {
        let mut best: Option<(Var, f64)> = None;
        for (i, &v) in self.values.iter().enumerate() {
            if v == Value::Undef {
                let a = self.activity[i];
                if best.map_or(true, |(_, ba)| a > ba) {
                    best = Some((Var(i as u32), a));
                }
            }
        }
        best.map(|(v, _)| v)
    }

    /// The conflict subset of the assumptions responsible for the failed
    /// assumption `p` (whose negation holds on the trail): walks the
    /// implication graph from `¬p` back to the assumption decisions
    /// (MiniSat's `analyzeFinal`). Returns assumption literals, `p`
    /// included.
    fn analyze_final(&self, p: Lit) -> Vec<Lit> {
        let mut out = vec![p];
        if self.trail_lim.is_empty() {
            // ¬p is implied at the root: p alone conflicts with the formula.
            return out;
        }
        let mut seen = vec![false; self.values.len()];
        seen[p.var().0 as usize] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().0 as usize;
            if !seen[v] {
                continue;
            }
            match self.reasons[v] {
                // Decisions above the root are exactly the assumptions.
                None => out.push(l),
                Some(ci) => {
                    for &q in &self.clauses[ci].lits {
                        let qv = q.var().0 as usize;
                        if self.levels[qv] > 0 {
                            seen[qv] = true;
                        }
                    }
                }
            }
        }
        out
    }

    /// Solves the current formula. Returns a full model or `Unsat`.
    ///
    /// After a `Sat` answer the solver is at the root level; blocking
    /// clauses can be added and `solve` called again.
    pub fn solve(&mut self) -> SatOutcome {
        match self.solve_under_assumptions(&[]) {
            AssumeOutcome::Sat(m) => SatOutcome::Sat(m),
            AssumeOutcome::Unsat(_) => SatOutcome::Unsat,
        }
    }

    /// Solves the current formula under the given assumption literals,
    /// MiniSat style: assumptions are enqueued as the first decisions (one
    /// level each), everything learnt while solving is a consequence of
    /// the formula alone and is retained for later calls. On UNSAT the
    /// payload is a conflict subset of the assumptions; clauses and
    /// variables may be added between calls.
    pub fn solve_under_assumptions(&mut self, assumptions: &[Lit]) -> AssumeOutcome {
        if self.unsat {
            return AssumeOutcome::Unsat(Vec::new());
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return AssumeOutcome::Unsat(Vec::new());
        }
        if self.max_learnts == 0 {
            self.max_learnts = ((self.clauses.len() - self.n_learnt) / 3).max(2000);
        }
        let mut restart_limit = 100u64;
        let mut conflicts_since_restart = 0u64;
        loop {
            if let Some(conflict) = self.propagate() {
                self.n_conflicts += 1;
                conflicts_since_restart += 1;
                if self.level() == 0 {
                    self.unsat = true;
                    return AssumeOutcome::Unsat(Vec::new());
                }
                let (learnt, bt) = self.analyze(conflict);
                self.backtrack(bt);
                self.var_inc *= 1.0 / 0.95;
                self.cla_inc *= 1.0 / 0.999;
                if learnt.len() == 1 {
                    if !self.enqueue(learnt[0], None) {
                        self.unsat = true;
                        return AssumeOutcome::Unsat(Vec::new());
                    }
                } else {
                    let ci = self.attach_learnt(learnt.clone());
                    if !self.enqueue(learnt[0], Some(ci)) {
                        self.unsat = true;
                        return AssumeOutcome::Unsat(Vec::new());
                    }
                }
                if self.n_learnt > self.max_learnts {
                    self.reduce_learnts();
                }
                if conflicts_since_restart >= restart_limit {
                    conflicts_since_restart = 0;
                    restart_limit = restart_limit * 3 / 2;
                    self.backtrack(0);
                }
            } else if (self.level() as usize) < assumptions.len() {
                // Establish the next assumption as a decision.
                let a = assumptions[self.level() as usize];
                match self.value_lit(a) {
                    // Already implied: open an empty level to keep the
                    // level ↔ assumption correspondence.
                    Value::True => self.trail_lim.push(self.trail.len()),
                    Value::False => {
                        let core = self.analyze_final(a);
                        self.backtrack(0);
                        return AssumeOutcome::Unsat(core);
                    }
                    Value::Undef => {
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(a, None);
                        debug_assert!(ok);
                    }
                }
            } else {
                match self.pick_branch() {
                    None => {
                        let model: Vec<bool> =
                            self.values.iter().map(|&v| v == Value::True).collect();
                        self.backtrack(0);
                        return AssumeOutcome::Sat(model);
                    }
                    Some(v) => {
                        self.n_decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.saved_phase[v.0 as usize];
                        let ok = self.enqueue(v.lit(phase), None);
                        debug_assert!(ok);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: i32) -> Lit {
        let var = Var((v.unsigned_abs() - 1) as u32);
        var.lit(v > 0)
    }

    fn solve(n: u32, clauses: &[&[i32]]) -> SatOutcome {
        let mut s = SatSolver::new(n);
        for c in clauses {
            s.add_clause(c.iter().map(|&v| lit(v)));
        }
        s.solve()
    }

    #[test]
    fn trivial_sat_unsat() {
        assert!(matches!(solve(1, &[&[1]]), SatOutcome::Sat(_)));
        assert!(matches!(solve(1, &[&[1], &[-1]]), SatOutcome::Unsat));
        assert!(matches!(solve(0, &[]), SatOutcome::Sat(_)));
        assert!(matches!(solve(1, &[&[]]), SatOutcome::Unsat));
    }

    #[test]
    fn unit_propagation_chain() {
        // 1, ¬1∨2, ¬2∨3 ⟹ 3.
        let out = solve(3, &[&[1], &[-1, 2], &[-2, 3]]);
        let SatOutcome::Sat(m) = out else { panic!("expected sat") };
        assert!(m[0] && m[1] && m[2]);
    }

    #[test]
    fn simple_conflict_learning() {
        // (1∨2) ∧ (1∨¬2) ∧ (¬1∨3) ∧ (¬1∨¬3) is unsat.
        assert!(matches!(solve(3, &[&[1, 2], &[1, -2], &[-1, 3], &[-1, -3]]), SatOutcome::Unsat));
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p_ij: pigeon i in hole j; vars 1..=6 (i*2+j).
        let v = |i: i32, j: i32| i * 2 + j + 1; // i∈0..3, j∈0..2
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![v(i, 0), v(i, 1)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    clauses.push(vec![-v(i1, j), -v(i2, j)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        assert!(matches!(solve(6, &refs), SatOutcome::Unsat));
    }

    #[test]
    fn blocking_clauses_enumerate_models() {
        // 2 free variables: exactly 4 models.
        let mut s = SatSolver::new(2);
        s.add_clause([lit(1), lit(-1)]); // tautology, ignored
        let mut count = 0;
        loop {
            match s.solve() {
                SatOutcome::Sat(m) => {
                    count += 1;
                    assert!(count <= 4, "more models than possible");
                    s.add_clause((0..2).map(|i| Var(i as u32).lit(!m[i])));
                }
                SatOutcome::Unsat => break,
            }
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn assumptions_sat_and_unsat() {
        // ¬1∨2, ¬2∨3: satisfiable under [1], and the model obeys the chain.
        let mut s = SatSolver::new(3);
        s.add_clause([lit(-1), lit(2)]);
        s.add_clause([lit(-2), lit(3)]);
        let AssumeOutcome::Sat(m) = s.solve_under_assumptions(&[lit(1)]) else {
            panic!("expected sat under [1]")
        };
        assert!(m[0] && m[1] && m[2]);
        // Unsat under [1, ¬3], but the formula itself stays satisfiable.
        let AssumeOutcome::Unsat(core) = s.solve_under_assumptions(&[lit(1), lit(-3)]) else {
            panic!("expected unsat under [1, ¬3]")
        };
        assert!(!core.is_empty(), "assumption conflict must name assumptions");
        for l in &core {
            assert!([lit(1), lit(-3)].contains(l), "core literal {l:?} is not an assumption");
        }
        assert!(matches!(s.solve(), SatOutcome::Sat(_)), "formula must stay satisfiable");
    }

    #[test]
    fn assumption_conflict_subset_is_tight() {
        // Variables 3 and 4 are irrelevant to the conflict between 1 and 2.
        let mut s = SatSolver::new(4);
        s.add_clause([lit(-1), lit(-2)]);
        let assumptions = [lit(3), lit(4), lit(1), lit(2)];
        let AssumeOutcome::Unsat(core) = s.solve_under_assumptions(&assumptions) else {
            panic!("expected unsat")
        };
        let mut core = core;
        core.sort();
        assert_eq!(core, vec![lit(1), lit(2)], "irrelevant assumptions must not appear");
        // Contradictory assumptions conflict even over an empty formula.
        let mut s2 = SatSolver::new(1);
        let AssumeOutcome::Unsat(core2) = s2.solve_under_assumptions(&[lit(1), lit(-1)]) else {
            panic!("expected unsat")
        };
        let mut core2 = core2;
        core2.sort();
        assert_eq!(core2, vec![lit(1), lit(-1)]);
    }

    #[test]
    fn assumptions_are_not_permanent() {
        let mut s = SatSolver::new(2);
        s.add_clause([lit(1), lit(2)]);
        assert!(matches!(s.solve_under_assumptions(&[lit(-1)]), AssumeOutcome::Sat(_)));
        // The previous call's assumption must not constrain this one.
        let AssumeOutcome::Sat(m) = s.solve_under_assumptions(&[lit(1), lit(-2)]) else {
            panic!("expected sat")
        };
        assert!(m[0] && !m[1]);
    }

    #[test]
    fn clauses_and_variables_grow_between_solves() {
        let mut s = SatSolver::new(1);
        s.add_clause([lit(1)]);
        assert!(matches!(s.solve(), SatOutcome::Sat(_)));
        let v = s.new_var();
        assert_eq!(s.num_vars(), 2);
        s.add_clause([v.negative()]);
        let AssumeOutcome::Sat(m) = s.solve_under_assumptions(&[]) else { panic!("sat") };
        assert!(m[0] && !m[1]);
        let AssumeOutcome::Unsat(core) = s.solve_under_assumptions(&[v.positive()]) else {
            panic!("unsat under the retired guard")
        };
        assert_eq!(core, vec![v.positive()]);
    }

    /// Learnt clauses are retained across calls: re-solving the same hard
    /// UNSAT instance under a fresh (irrelevant) assumption does strictly
    /// less propagation/conflict work the second time.
    #[test]
    fn clause_retention_observable_via_counters() {
        // Pigeonhole 4→3, guarded by an activation literal so the solver
        // itself never latches a root-level UNSAT.
        let holes = 3;
        let pigeons = 4;
        let v = |i: u32, j: u32| Var(1 + i * holes + j); // var 0 is the guard
        let guard = Var(0).positive();
        let mut s = SatSolver::new(1 + pigeons * holes);
        for i in 0..pigeons {
            let mut c: Vec<Lit> = (0..holes).map(|j| v(i, j).positive()).collect();
            c.push(guard.negate());
            s.add_clause(c);
        }
        for j in 0..holes {
            for i1 in 0..pigeons {
                for i2 in (i1 + 1)..pigeons {
                    s.add_clause([v(i1, j).negative(), v(i2, j).negative(), guard.negate()]);
                }
            }
        }
        assert!(matches!(s.solve_under_assumptions(&[guard]), AssumeOutcome::Unsat(_)));
        let conflicts_first = s.conflicts();
        let props_first = s.propagations();
        assert!(conflicts_first > 0, "pigeonhole needs search");
        assert!(s.learnt_count() > 0, "learnt clauses must be retained");
        assert!(matches!(s.solve_under_assumptions(&[guard]), AssumeOutcome::Unsat(_)));
        let conflicts_second = s.conflicts() - conflicts_first;
        let props_second = s.propagations() - props_first;
        assert!(
            conflicts_second < conflicts_first,
            "retained clauses must reduce conflicts: {conflicts_second} vs {conflicts_first}"
        );
        assert!(
            props_second < props_first,
            "retained clauses must reduce propagations: {props_second} vs {props_first}"
        );
    }

    /// Aggressive learnt-database reduction (tiny budget) on an
    /// incremental clause stream never changes verdicts, and the database
    /// stays bounded.
    #[test]
    fn learnt_reduction_bounds_database_and_stays_correct() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let brute = |n: u32, clauses: &[Vec<Lit>]| -> bool {
            (0..(1u32 << n)).any(|bits| {
                clauses.iter().all(|c| {
                    c.iter().any(|l| {
                        let val = bits & (1 << l.var().0) != 0;
                        if l.is_positive() { val } else { !val }
                    })
                })
            })
        };
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let n = rng.gen_range(6..10) as u32;
            let mut s = SatSolver::new(n);
            s.set_learnt_budget(2);
            let mut clauses: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..60 {
                let c: Vec<Lit> = (0..3)
                    .map(|_| Var(rng.gen_range(0..n)).lit(rng.gen_bool(0.5)))
                    .collect();
                clauses.push(c.clone());
                s.add_clause(c);
                let expect = brute(n, &clauses);
                assert_eq!(
                    matches!(s.solve(), SatOutcome::Sat(_)),
                    expect,
                    "verdict diverged under reduction: {clauses:?}"
                );
                if !expect {
                    break;
                }
            }
            assert!(s.learnt_count() <= 200, "database unbounded: {}", s.learnt_count());
        }
        // The tiny random streams may tip UNSAT before the database fills,
        // so force the compaction path deterministically with a guarded
        // pigeonhole (5→4) under a budget of 1: the instance generates many
        // long, high-LBD learnt clauses and stays re-solvable because only
        // the assumption makes it inconsistent.
        let holes = 4;
        let pigeons = 5;
        let v = |i: u32, j: u32| Var(1 + i * holes + j); // var 0 is the guard
        let guard = Var(0).positive();
        let mut s = SatSolver::new(1 + pigeons * holes);
        s.set_learnt_budget(1);
        for i in 0..pigeons {
            let mut c: Vec<Lit> = (0..holes).map(|j| v(i, j).positive()).collect();
            c.push(guard.negate());
            s.add_clause(c);
        }
        for j in 0..holes {
            for i1 in 0..pigeons {
                for i2 in (i1 + 1)..pigeons {
                    s.add_clause([v(i1, j).negative(), v(i2, j).negative(), guard.negate()]);
                }
            }
        }
        for _ in 0..3 {
            assert!(matches!(s.solve_under_assumptions(&[guard]), AssumeOutcome::Unsat(_)));
        }
        assert!(s.reductions() > 0, "the tiny budget must trigger reductions");
        assert!(
            matches!(s.solve_under_assumptions(&[]), AssumeOutcome::Sat(_)),
            "formula stays satisfiable without the guard after reductions"
        );
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..300 {
            let n = rng.gen_range(3..9);
            let m = rng.gen_range(1..30);
            let clauses: Vec<Vec<i32>> = (0..m)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = rng.gen_range(1..=n) as i32;
                            if rng.gen_bool(0.5) {
                                v
                            } else {
                                -v
                            }
                        })
                        .collect()
                })
                .collect();
            // Brute force.
            let mut brute_sat = false;
            'outer: for bits in 0..(1u32 << n) {
                for c in &clauses {
                    let ok = c.iter().any(|&l| {
                        let v = (l.unsigned_abs() - 1) as u32;
                        let val = bits & (1 << v) != 0;
                        if l > 0 {
                            val
                        } else {
                            !val
                        }
                    });
                    if !ok {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
            let out = solve(n as u32, &refs);
            match out {
                SatOutcome::Sat(model) => {
                    assert!(brute_sat, "solver said sat, brute force disagrees: {clauses:?}");
                    for c in &clauses {
                        assert!(
                            c.iter().any(|&l| {
                                let v = (l.unsigned_abs() - 1) as usize;
                                if l > 0 {
                                    model[v]
                                } else {
                                    !model[v]
                                }
                            }),
                            "model does not satisfy {c:?}"
                        );
                    }
                }
                SatOutcome::Unsat => {
                    assert!(!brute_sat, "solver said unsat, brute force found a model: {clauses:?}");
                }
            }
        }
    }
}
