//! Tseitin transformation: boolean term DAG → CNF, with an atom map for
//! the lazy theory layer.
//!
//! The worker type, [`Tseitin`], is a *persistent* term→literal cache: it
//! does not borrow the term context, so an incremental session can keep
//! it alive across solve calls and only pay for subterms it has never
//! encoded before. Definition clauses are full equivalences, hence valid
//! independent of which assertions are currently active — they never need
//! to be guarded or retracted.

use std::collections::HashMap;

use crate::sat::{Cnf, Lit, Var};
use crate::term::{Context, Sort, TermData, TermId};

/// Persistent Tseitin state: term → literal cache, collected theory
/// atoms, and the reserved "true" literal. Fresh variables and definition
/// clauses are emitted into the `Cnf` passed to [`Tseitin::lit`]; an
/// incremental caller seeds that `Cnf`'s `n_vars` with the solver's
/// current variable count so numbering stays aligned.
#[derive(Debug, Default)]
pub(crate) struct Tseitin {
    map: HashMap<TermId, Lit>,
    atoms: Vec<(TermId, Var)>,
    const_true: Option<Lit>,
}

impl Tseitin {
    pub fn new() -> Self {
        Tseitin::default()
    }

    /// The theory atoms encoded so far, in first-encounter order.
    pub fn atoms(&self) -> &[(TermId, Var)] {
        &self.atoms
    }

    /// The term → literal cache.
    pub fn map(&self) -> &HashMap<TermId, Lit> {
        &self.map
    }

    fn true_lit(&mut self, cnf: &mut Cnf) -> Lit {
        if let Some(l) = self.const_true {
            return l;
        }
        let v = cnf.fresh();
        cnf.add([v.positive()]);
        self.const_true = Some(v.positive());
        v.positive()
    }

    /// The literal of boolean term `t`, encoding it (and any not-yet-seen
    /// subterms) into `cnf` on first encounter.
    pub fn lit(&mut self, ctx: &Context, t: TermId, cnf: &mut Cnf) -> Lit {
        if let Some(&l) = self.map.get(&t) {
            return l;
        }
        let l = match ctx.data(t) {
            TermData::BoolConst(true) => self.true_lit(cnf),
            TermData::BoolConst(false) => self.true_lit(cnf).negate(),
            TermData::Var(_) if ctx.sort(t) == Sort::Bool => cnf.fresh().positive(),
            TermData::Eq(_, _) | TermData::Le(_, _) | TermData::Lt(_, _) => {
                let v = cnf.fresh();
                self.atoms.push((t, v));
                v.positive()
            }
            TermData::Not(a) => {
                let a = *a;
                self.lit(ctx, a, cnf).negate()
            }
            TermData::And(xs) => {
                let xs = xs.clone();
                let lits: Vec<Lit> = xs.iter().map(|&x| self.lit(ctx, x, cnf)).collect();
                let v = cnf.fresh().positive();
                for &x in &lits {
                    cnf.add([v.negate(), x]);
                }
                let mut big: Vec<Lit> = lits.iter().map(|x| x.negate()).collect();
                big.push(v);
                cnf.add(big);
                v
            }
            TermData::Or(xs) => {
                let xs = xs.clone();
                let lits: Vec<Lit> = xs.iter().map(|&x| self.lit(ctx, x, cnf)).collect();
                let v = cnf.fresh().positive();
                for &x in &lits {
                    cnf.add([v, x.negate()]);
                }
                let mut big: Vec<Lit> = lits.clone();
                big.push(v.negate());
                cnf.add(big);
                v
            }
            TermData::Implies(a, b) => {
                let (a, b) = (*a, *b);
                let la = self.lit(ctx, a, cnf);
                let lb = self.lit(ctx, b, cnf);
                let v = cnf.fresh().positive();
                // v ↔ (¬a ∨ b)
                cnf.add([v.negate(), la.negate(), lb]);
                cnf.add([v, la]);
                cnf.add([v, lb.negate()]);
                v
            }
            TermData::Iff(a, b) => {
                let (a, b) = (*a, *b);
                let la = self.lit(ctx, a, cnf);
                let lb = self.lit(ctx, b, cnf);
                let v = cnf.fresh().positive();
                cnf.add([v.negate(), la.negate(), lb]);
                cnf.add([v.negate(), la, lb.negate()]);
                cnf.add([v, la, lb]);
                cnf.add([v, la.negate(), lb.negate()]);
                v
            }
            TermData::Distinct(_) => {
                panic!("distinct must be expanded by preprocessing")
            }
            TermData::Var(_) | TermData::App(_, _) | TermData::IntConst(_) => {
                panic!("non-boolean term in boolean position: {}", ctx.display(t))
            }
        };
        self.map.insert(t, l);
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{SatOutcome, SatSolver};

    fn solve_terms(ctx: &Context, assertions: &[TermId]) -> SatOutcome {
        let mut ts = Tseitin::new();
        let mut cnf = Cnf::new();
        for &a in assertions {
            let l = ts.lit(ctx, a, &mut cnf);
            cnf.add([l]);
        }
        SatSolver::from_cnf(&cnf).solve()
    }

    #[test]
    fn propositional_reasoning() {
        let mut ctx = Context::new();
        let a = ctx.var("a", Sort::Bool);
        let b = ctx.var("b", Sort::Bool);
        let ab = ctx.and([a, b]);
        assert!(matches!(solve_terms(&ctx, &[ab]), SatOutcome::Sat(_)));
        let na = ctx.not(a);
        let contra = ctx.and([a, na]);
        assert!(matches!(solve_terms(&ctx, &[contra]), SatOutcome::Unsat));
        let imp = ctx.implies(a, b);
        let nb = ctx.not(b);
        assert!(matches!(solve_terms(&ctx, &[imp, a, nb]), SatOutcome::Unsat));
        let iff = ctx.iff(a, b);
        assert!(matches!(solve_terms(&ctx, &[iff, a, nb]), SatOutcome::Unsat));
        assert!(matches!(solve_terms(&ctx, &[iff, a, b]), SatOutcome::Sat(_)));
    }

    #[test]
    fn atoms_are_collected() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let x = ctx.var("x", s);
        let y = ctx.var("y", s);
        let e = ctx.eq(x, y);
        let a = ctx.var("a", Sort::Bool);
        let f = ctx.or([e, a]);
        let mut ts = Tseitin::new();
        let mut cnf = Cnf::new();
        ts.lit(&ctx, f, &mut cnf);
        assert_eq!(ts.atoms().len(), 1);
        assert_eq!(ts.atoms()[0].0, e);
    }

    #[test]
    fn bool_constants() {
        let mut ctx = Context::new();
        let t = ctx.tru();
        let f = ctx.fls();
        assert!(matches!(solve_terms(&ctx, &[t]), SatOutcome::Sat(_)));
        assert!(matches!(solve_terms(&ctx, &[f]), SatOutcome::Unsat));
    }

    #[test]
    fn persistent_cache_encodes_each_subterm_once() {
        let mut ctx = Context::new();
        let a = ctx.var("a", Sort::Bool);
        let b = ctx.var("b", Sort::Bool);
        let ab = ctx.and([a, b]);
        let mut ts = Tseitin::new();
        let mut cnf = Cnf::new();
        let l1 = ts.lit(&ctx, ab, &mut cnf);
        let clauses_after_first = cnf.clauses.len();
        let vars_after_first = cnf.n_vars;
        // Re-encoding the same term (or a superterm sharing it) adds no
        // definition clauses for the cached part.
        let l2 = ts.lit(&ctx, ab, &mut cnf);
        assert_eq!(l1, l2);
        assert_eq!(cnf.clauses.len(), clauses_after_first);
        assert_eq!(cnf.n_vars, vars_after_first);
        let nab = ctx.not(ab);
        let or = ctx.or([nab, a]);
        ts.lit(&ctx, or, &mut cnf);
        // Only the Or node is new: one fresh var, three clauses (2 + big).
        assert_eq!(cnf.n_vars, vars_after_first + 1);
    }
}
