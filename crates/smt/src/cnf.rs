//! Tseitin transformation: boolean term DAG → CNF, with an atom map for
//! the lazy theory layer.

use std::collections::HashMap;

use crate::sat::{Cnf, Lit, Var};
use crate::term::{Context, Sort, TermData, TermId};

/// The result of encoding a set of assertions.
#[derive(Debug)]
pub struct Encoded {
    /// The CNF to hand to the SAT core.
    pub cnf: Cnf,
    /// Boolean term → its SAT literal (every boolean subterm appears).
    pub lit_of_term: HashMap<TermId, Lit>,
    /// Theory atoms (`Eq`, `Le`, `Lt`) and their SAT variables.
    pub atoms: Vec<(TermId, Var)>,
}

/// Encodes the conjunction of `assertions`.
///
/// # Panics
///
/// Panics if an assertion is not of boolean sort, or contains a construct
/// the preprocessor should have removed (see `solver::preprocess`).
pub fn encode(ctx: &Context, assertions: &[TermId]) -> Encoded {
    let mut enc = Encoder {
        ctx,
        cnf: Cnf::new(),
        map: HashMap::new(),
        atoms: Vec::new(),
        const_true: None,
    };
    for &a in assertions {
        assert_eq!(ctx.sort(a), Sort::Bool, "assertions must be boolean");
        let l = enc.lit(a);
        enc.cnf.add([l]);
    }
    Encoded { cnf: enc.cnf, lit_of_term: enc.map, atoms: enc.atoms }
}

struct Encoder<'a> {
    ctx: &'a Context,
    cnf: Cnf,
    map: HashMap<TermId, Lit>,
    atoms: Vec<(TermId, Var)>,
    const_true: Option<Lit>,
}

impl Encoder<'_> {
    fn true_lit(&mut self) -> Lit {
        if let Some(l) = self.const_true {
            return l;
        }
        let v = self.cnf.fresh();
        self.cnf.add([v.positive()]);
        self.const_true = Some(v.positive());
        v.positive()
    }

    fn lit(&mut self, t: TermId) -> Lit {
        if let Some(&l) = self.map.get(&t) {
            return l;
        }
        let l = match self.ctx.data(t) {
            TermData::BoolConst(true) => self.true_lit(),
            TermData::BoolConst(false) => self.true_lit().negate(),
            TermData::Var(_) if self.ctx.sort(t) == Sort::Bool => {
                self.cnf.fresh().positive()
            }
            TermData::Eq(_, _) | TermData::Le(_, _) | TermData::Lt(_, _) => {
                let v = self.cnf.fresh();
                self.atoms.push((t, v));
                v.positive()
            }
            TermData::Not(a) => {
                let a = *a;
                self.lit(a).negate()
            }
            TermData::And(xs) => {
                let xs = xs.clone();
                let lits: Vec<Lit> = xs.iter().map(|&x| self.lit(x)).collect();
                let v = self.cnf.fresh().positive();
                for &x in &lits {
                    self.cnf.add([v.negate(), x]);
                }
                let mut big: Vec<Lit> = lits.iter().map(|x| x.negate()).collect();
                big.push(v);
                self.cnf.add(big);
                v
            }
            TermData::Or(xs) => {
                let xs = xs.clone();
                let lits: Vec<Lit> = xs.iter().map(|&x| self.lit(x)).collect();
                let v = self.cnf.fresh().positive();
                for &x in &lits {
                    self.cnf.add([v, x.negate()]);
                }
                let mut big: Vec<Lit> = lits.clone();
                big.push(v.negate());
                self.cnf.add(big);
                v
            }
            TermData::Implies(a, b) => {
                let (a, b) = (*a, *b);
                let la = self.lit(a);
                let lb = self.lit(b);
                let v = self.cnf.fresh().positive();
                // v ↔ (¬a ∨ b)
                self.cnf.add([v.negate(), la.negate(), lb]);
                self.cnf.add([v, la]);
                self.cnf.add([v, lb.negate()]);
                v
            }
            TermData::Iff(a, b) => {
                let (a, b) = (*a, *b);
                let la = self.lit(a);
                let lb = self.lit(b);
                let v = self.cnf.fresh().positive();
                self.cnf.add([v.negate(), la.negate(), lb]);
                self.cnf.add([v.negate(), la, lb.negate()]);
                self.cnf.add([v, la, lb]);
                self.cnf.add([v, la.negate(), lb.negate()]);
                v
            }
            TermData::Distinct(_) => {
                panic!("distinct must be expanded by preprocessing")
            }
            TermData::Var(_) | TermData::App(_, _) | TermData::IntConst(_) => {
                panic!("non-boolean term in boolean position: {}", self.ctx.display(t))
            }
        };
        self.map.insert(t, l);
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{SatOutcome, SatSolver};

    fn solve_terms(ctx: &Context, assertions: &[TermId]) -> SatOutcome {
        let enc = encode(ctx, assertions);
        SatSolver::from_cnf(&enc.cnf).solve()
    }

    #[test]
    fn propositional_reasoning() {
        let mut ctx = Context::new();
        let a = ctx.var("a", Sort::Bool);
        let b = ctx.var("b", Sort::Bool);
        let ab = ctx.and([a, b]);
        assert!(matches!(solve_terms(&ctx, &[ab]), SatOutcome::Sat(_)));
        let na = ctx.not(a);
        let contra = ctx.and([a, na]);
        assert!(matches!(solve_terms(&ctx, &[contra]), SatOutcome::Unsat));
        let imp = ctx.implies(a, b);
        let nb = ctx.not(b);
        assert!(matches!(solve_terms(&ctx, &[imp, a, nb]), SatOutcome::Unsat));
        let iff = ctx.iff(a, b);
        assert!(matches!(solve_terms(&ctx, &[iff, a, nb]), SatOutcome::Unsat));
        assert!(matches!(solve_terms(&ctx, &[iff, a, b]), SatOutcome::Sat(_)));
    }

    #[test]
    fn atoms_are_collected() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let x = ctx.var("x", s);
        let y = ctx.var("y", s);
        let e = ctx.eq(x, y);
        let a = ctx.var("a", Sort::Bool);
        let f = ctx.or([e, a]);
        let enc = encode(&ctx, &[f]);
        assert_eq!(enc.atoms.len(), 1);
        assert_eq!(enc.atoms[0].0, e);
    }

    #[test]
    fn bool_constants() {
        let mut ctx = Context::new();
        let t = ctx.tru();
        let f = ctx.fls();
        assert!(matches!(solve_terms(&ctx, &[t]), SatOutcome::Sat(_)));
        assert!(matches!(solve_terms(&ctx, &[f]), SatOutcome::Unsat));
    }
}
