//! Equality over uninterpreted sorts and functions: congruence closure.
//!
//! Rebuilt from scratch on each (small) theory check — the lazy
//! architecture needs no incrementality.

use std::collections::HashMap;

use crate::term::{Context, TermData, TermId};

/// Result of a congruence-closure check.
#[derive(Debug)]
pub enum EufResult {
    /// Consistent; maps every relevant term to its class representative.
    Consistent(HashMap<TermId, TermId>),
    /// Inconsistent: the index (into the input slice) of a violated
    /// disequality.
    Inconsistent(usize),
}

/// Checks a conjunction of equalities and disequalities over terms.
///
/// `eqs` and `diseqs` are pairs of terms of matching sorts; function
/// applications among (sub)terms participate in congruence.
pub fn check(ctx: &Context, eqs: &[(TermId, TermId)], diseqs: &[(TermId, TermId)]) -> EufResult {
    let mut cc = Congruence::new(ctx);
    // Register every term (including disequality operands) *before*
    // congruence propagation, so their applications participate.
    for &(a, b) in eqs.iter().chain(diseqs) {
        cc.register(a);
        cc.register(b);
    }
    for &(a, b) in eqs {
        cc.merge(a, b);
    }
    cc.close();
    for (i, &(a, b)) in diseqs.iter().enumerate() {
        if cc.find(a) == cc.find(b) {
            return EufResult::Inconsistent(i);
        }
    }
    EufResult::Consistent(cc.representatives())
}

struct Congruence<'a> {
    ctx: &'a Context,
    parent: HashMap<TermId, TermId>,
    /// All application terms relevant to congruence.
    apps: Vec<TermId>,
}

impl<'a> Congruence<'a> {
    fn new(ctx: &'a Context) -> Self {
        Congruence { ctx, parent: HashMap::new(), apps: Vec::new() }
    }

    fn register(&mut self, t: TermId) {
        if self.parent.contains_key(&t) {
            return;
        }
        self.parent.insert(t, t);
        if let TermData::App(_, args) = self.ctx.data(t) {
            self.apps.push(t);
            for &a in args.clone().iter() {
                self.register(a);
            }
        }
    }

    fn find(&mut self, t: TermId) -> TermId {
        self.register(t);
        let mut root = t;
        while self.parent[&root] != root {
            root = self.parent[&root];
        }
        // Path compression.
        let mut cur = t;
        while self.parent[&cur] != root {
            let next = self.parent[&cur];
            self.parent.insert(cur, root);
            cur = next;
        }
        root
    }

    fn merge(&mut self, a: TermId, b: TermId) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }

    /// Congruence propagation to fixpoint: `f(a…) = f(b…)` whenever the
    /// arguments are pairwise equal.
    fn close(&mut self) {
        loop {
            let mut merged = false;
            let apps = self.apps.clone();
            for (i, &t1) in apps.iter().enumerate() {
                for &t2 in &apps[i + 1..] {
                    if self.find(t1) == self.find(t2) {
                        continue;
                    }
                    let (f1, args1) = match self.ctx.data(t1) {
                        TermData::App(f, a) => (*f, a.clone()),
                        _ => unreachable!(),
                    };
                    let (f2, args2) = match self.ctx.data(t2) {
                        TermData::App(f, a) => (*f, a.clone()),
                        _ => unreachable!(),
                    };
                    if f1 == f2
                        && args1.len() == args2.len()
                        && args1.iter().zip(&args2).all(|(&x, &y)| self.find(x) == self.find(y))
                    {
                        self.merge(t1, t2);
                        merged = true;
                    }
                }
            }
            if !merged {
                return;
            }
        }
    }

    fn representatives(&mut self) -> HashMap<TermId, TermId> {
        let keys: Vec<TermId> = self.parent.keys().copied().collect();
        keys.into_iter().map(|t| (t, self.find(t))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    #[test]
    fn transitivity() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let x = ctx.var("x", s);
        let y = ctx.var("y", s);
        let z = ctx.var("z", s);
        match check(&ctx, &[(x, y), (y, z)], &[(x, z)]) {
            EufResult::Inconsistent(0) => {}
            other => panic!("expected inconsistency, got {other:?}"),
        }
        assert!(matches!(check(&ctx, &[(x, y)], &[(y, z)]), EufResult::Consistent(_)));
    }

    #[test]
    fn congruence_over_functions() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let f = ctx.func("f", vec![s], s);
        let x = ctx.var("x", s);
        let y = ctx.var("y", s);
        let fx = ctx.app(f, vec![x]);
        let fy = ctx.app(f, vec![y]);
        // x = y ⟹ f(x) = f(y).
        match check(&ctx, &[(x, y)], &[(fx, fy)]) {
            EufResult::Inconsistent(0) => {}
            other => panic!("congruence missed: {other:?}"),
        }
        // f(x) = f(y) does not imply x = y.
        assert!(matches!(check(&ctx, &[(fx, fy)], &[(x, y)]), EufResult::Consistent(_)));
    }

    #[test]
    fn nested_congruence() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let f = ctx.func("f", vec![s], s);
        let x = ctx.var("x", s);
        let fx = ctx.app(f, vec![x]);
        let ffx = ctx.app(f, vec![fx]);
        let fffx = ctx.app(f, vec![ffx]);
        // x = f(x) ⟹ x = f(f(f(x))).
        match check(&ctx, &[(x, fx)], &[(x, fffx)]) {
            EufResult::Inconsistent(0) => {}
            other => panic!("nested congruence missed: {other:?}"),
        }
    }

    #[test]
    fn model_classes() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let x = ctx.var("x", s);
        let y = ctx.var("y", s);
        let z = ctx.var("z", s);
        let EufResult::Consistent(reps) = check(&ctx, &[(x, y)], &[(x, z)]) else {
            panic!("expected consistent");
        };
        assert_eq!(reps[&x], reps[&y]);
        assert_ne!(reps[&x], reps[&z]);
        let _ = Sort::Bool;
    }
}
