//! Terms, sorts and the term context (hash-consed arena).

use std::collections::HashMap;
use std::fmt;

/// A sort (type) of a term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sort {
    /// The booleans.
    Bool,
    /// The integers.
    Int,
    /// An uninterpreted sort created with
    /// [`Context::uninterpreted_sort`].
    Uninterpreted(u32),
}

/// Identifier of a declared variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub u32);

/// Identifier of a declared uninterpreted function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuncId(pub u32);

/// Identifier of a term in a [`Context`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// The structure of a term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermData {
    /// A boolean constant.
    BoolConst(bool),
    /// An integer constant.
    IntConst(i64),
    /// A declared variable.
    Var(VarId),
    /// Application of an uninterpreted function.
    App(FuncId, Vec<TermId>),
    /// Equality (operands of equal sort).
    Eq(TermId, TermId),
    /// Less-or-equal over integers.
    Le(TermId, TermId),
    /// Strictly-less over integers.
    Lt(TermId, TermId),
    /// Pairwise distinctness.
    Distinct(Vec<TermId>),
    /// Negation.
    Not(TermId),
    /// N-ary conjunction.
    And(Vec<TermId>),
    /// N-ary disjunction.
    Or(Vec<TermId>),
    /// Implication.
    Implies(TermId, TermId),
    /// Bi-implication.
    Iff(TermId, TermId),
}

/// The term context: declares sorts, variables and functions, and builds
/// hash-consed terms.
#[derive(Debug, Default)]
pub struct Context {
    terms: Vec<TermData>,
    sorts: Vec<Sort>,
    cons: HashMap<TermData, TermId>,
    var_names: Vec<(String, Sort)>,
    func_sigs: Vec<(String, Vec<Sort>, Sort)>,
    sort_names: Vec<String>,
}

impl Context {
    /// Creates an empty context.
    pub fn new() -> Self {
        Context::default()
    }

    /// Declares a fresh uninterpreted sort.
    pub fn uninterpreted_sort(&mut self, name: impl Into<String>) -> Sort {
        let id = self.sort_names.len() as u32;
        self.sort_names.push(name.into());
        Sort::Uninterpreted(id)
    }

    /// Declares a fresh variable of the given sort and returns its term.
    pub fn var(&mut self, name: impl Into<String>, sort: Sort) -> TermId {
        let id = VarId(self.var_names.len() as u32);
        self.var_names.push((name.into(), sort));
        self.intern(TermData::Var(id), sort)
    }

    /// Declares an uninterpreted function.
    ///
    /// # Panics
    ///
    /// Panics if the result sort is `Bool` (boolean functions are not
    /// supported; use boolean variables and `iff`).
    pub fn func(&mut self, name: impl Into<String>, args: Vec<Sort>, ret: Sort) -> FuncId {
        assert!(ret != Sort::Bool, "boolean-valued uninterpreted functions are not supported");
        let id = FuncId(self.func_sigs.len() as u32);
        self.func_sigs.push((name.into(), args, ret));
        id
    }

    /// The sort of a term.
    pub fn sort(&self, t: TermId) -> Sort {
        self.sorts[t.index()]
    }

    /// The structure of a term.
    pub fn data(&self, t: TermId) -> &TermData {
        &self.terms[t.index()]
    }

    /// Name of a declared variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.0 as usize].0
    }

    fn intern(&mut self, data: TermData, sort: Sort) -> TermId {
        if let Some(&id) = self.cons.get(&data) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(data.clone());
        self.sorts.push(sort);
        self.cons.insert(data, id);
        id
    }

    /// Boolean constant.
    pub fn bool_const(&mut self, b: bool) -> TermId {
        self.intern(TermData::BoolConst(b), Sort::Bool)
    }

    /// The constant `true`.
    pub fn tru(&mut self) -> TermId {
        self.bool_const(true)
    }

    /// The constant `false`.
    pub fn fls(&mut self) -> TermId {
        self.bool_const(false)
    }

    /// Integer constant.
    pub fn int(&mut self, v: i64) -> TermId {
        self.intern(TermData::IntConst(v), Sort::Int)
    }

    /// Function application.
    ///
    /// # Panics
    ///
    /// Panics on arity or sort mismatch.
    pub fn app(&mut self, f: FuncId, args: Vec<TermId>) -> TermId {
        let (_, arg_sorts, ret) = self.func_sigs[f.0 as usize].clone();
        assert_eq!(args.len(), arg_sorts.len(), "arity mismatch");
        for (a, s) in args.iter().zip(&arg_sorts) {
            assert_eq!(self.sort(*a), *s, "argument sort mismatch");
        }
        self.intern(TermData::App(f, args), ret)
    }

    /// Equality.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different sorts.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        assert_eq!(self.sort(a), self.sort(b), "equality between different sorts");
        if a == b {
            return self.tru();
        }
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        self.intern(TermData::Eq(a, b), Sort::Bool)
    }

    /// `a ≤ b` over integers.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are integers.
    pub fn le(&mut self, a: TermId, b: TermId) -> TermId {
        assert_eq!(self.sort(a), Sort::Int);
        assert_eq!(self.sort(b), Sort::Int);
        self.intern(TermData::Le(a, b), Sort::Bool)
    }

    /// `a < b` over integers.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are integers.
    pub fn lt(&mut self, a: TermId, b: TermId) -> TermId {
        assert_eq!(self.sort(a), Sort::Int);
        assert_eq!(self.sort(b), Sort::Int);
        self.intern(TermData::Lt(a, b), Sort::Bool)
    }

    /// Pairwise distinctness.
    ///
    /// # Panics
    ///
    /// Panics if operand sorts differ.
    pub fn distinct(&mut self, xs: Vec<TermId>) -> TermId {
        if xs.len() < 2 {
            return self.tru();
        }
        let s = self.sort(xs[0]);
        for &x in &xs {
            assert_eq!(self.sort(x), s, "distinct between different sorts");
        }
        let mut xs = xs;
        xs.sort();
        xs.dedup();
        self.intern(TermData::Distinct(xs), Sort::Bool)
    }

    /// Negation.
    pub fn not(&mut self, a: TermId) -> TermId {
        match *self.data(a) {
            TermData::BoolConst(b) => self.bool_const(!b),
            TermData::Not(inner) => inner,
            _ => self.intern(TermData::Not(a), Sort::Bool),
        }
    }

    /// Conjunction.
    pub fn and(&mut self, xs: impl IntoIterator<Item = TermId>) -> TermId {
        let mut out = Vec::new();
        for x in xs {
            match self.data(x) {
                TermData::BoolConst(true) => {}
                TermData::BoolConst(false) => return self.fls(),
                TermData::And(inner) => out.extend(inner.iter().copied()),
                _ => out.push(x),
            }
        }
        out.sort();
        out.dedup();
        match out.len() {
            0 => self.tru(),
            1 => out[0],
            _ => self.intern(TermData::And(out), Sort::Bool),
        }
    }

    /// Disjunction.
    pub fn or(&mut self, xs: impl IntoIterator<Item = TermId>) -> TermId {
        let mut out = Vec::new();
        for x in xs {
            match self.data(x) {
                TermData::BoolConst(false) => {}
                TermData::BoolConst(true) => return self.tru(),
                TermData::Or(inner) => out.extend(inner.iter().copied()),
                _ => out.push(x),
            }
        }
        out.sort();
        out.dedup();
        match out.len() {
            0 => self.fls(),
            1 => out[0],
            _ => self.intern(TermData::Or(out), Sort::Bool),
        }
    }

    /// Implication.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        self.intern(TermData::Implies(a, b), Sort::Bool)
    }

    /// Bi-implication.
    pub fn iff(&mut self, a: TermId, b: TermId) -> TermId {
        if a == b {
            return self.tru();
        }
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        self.intern(TermData::Iff(a, b), Sort::Bool)
    }

    /// Number of interned terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Renders a term for diagnostics.
    pub fn display(&self, t: TermId) -> String {
        match self.data(t) {
            TermData::BoolConst(b) => b.to_string(),
            TermData::IntConst(v) => v.to_string(),
            TermData::Var(v) => self.var_name(*v).to_owned(),
            TermData::App(f, args) => {
                let name = &self.func_sigs[f.0 as usize].0;
                let args: Vec<_> = args.iter().map(|&a| self.display(a)).collect();
                format!("{name}({})", args.join(","))
            }
            TermData::Eq(a, b) => format!("({} = {})", self.display(*a), self.display(*b)),
            TermData::Le(a, b) => format!("({} ≤ {})", self.display(*a), self.display(*b)),
            TermData::Lt(a, b) => format!("({} < {})", self.display(*a), self.display(*b)),
            TermData::Distinct(xs) => {
                let xs: Vec<_> = xs.iter().map(|&a| self.display(a)).collect();
                format!("distinct({})", xs.join(","))
            }
            TermData::Not(a) => format!("¬{}", self.display(*a)),
            TermData::And(xs) => {
                let xs: Vec<_> = xs.iter().map(|&a| self.display(a)).collect();
                format!("({})", xs.join(" ∧ "))
            }
            TermData::Or(xs) => {
                let xs: Vec<_> = xs.iter().map(|&a| self.display(a)).collect();
                format!("({})", xs.join(" ∨ "))
            }
            TermData::Implies(a, b) => {
                format!("({} → {})", self.display(*a), self.display(*b))
            }
            TermData::Iff(a, b) => format!("({} ↔ {})", self.display(*a), self.display(*b)),
        }
    }
}

impl fmt::Display for Sort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sort::Bool => write!(f, "Bool"),
            Sort::Int => write!(f, "Int"),
            Sort::Uninterpreted(i) => write!(f, "U{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let x = ctx.var("x", s);
        let y = ctx.var("y", s);
        assert_eq!(ctx.eq(x, y), ctx.eq(y, x), "equality is order-normalized");
        let n = ctx.term_count();
        let _ = ctx.eq(x, y);
        assert_eq!(ctx.term_count(), n);
    }

    #[test]
    fn smart_constructors() {
        let mut ctx = Context::new();
        let t = ctx.tru();
        let f = ctx.fls();
        assert_eq!(ctx.and([t, t]), t);
        assert_eq!(ctx.and([t, f]), f);
        assert_eq!(ctx.or([f, f]), f);
        let s = ctx.uninterpreted_sort("k");
        let x = ctx.var("x", s);
        let e = ctx.eq(x, x);
        assert_eq!(e, t, "reflexive equality is true");
        let ne = ctx.not(e);
        assert_eq!(ne, f);
        let a = ctx.var("a", Sort::Bool);
        let na = ctx.not(a);
        assert_eq!(ctx.not(na), a, "double negation cancels");
    }

    #[test]
    #[should_panic(expected = "different sorts")]
    fn eq_sort_checked() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let x = ctx.var("x", s);
        let i = ctx.int(1);
        let _ = ctx.eq(x, i);
    }

    #[test]
    fn function_application_sorts() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let f = ctx.func("f", vec![s], s);
        let x = ctx.var("x", s);
        let fx = ctx.app(f, vec![x]);
        assert_eq!(ctx.sort(fx), s);
        assert_eq!(ctx.display(fx), "f(x)");
    }

    #[test]
    fn distinct_normalizes() {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("k");
        let x = ctx.var("x", s);
        let y = ctx.var("y", s);
        let d1 = ctx.distinct(vec![x, y]);
        let d2 = ctx.distinct(vec![y, x]);
        assert_eq!(d1, d2);
        let single = ctx.distinct(vec![x]);
        let t = ctx.tru();
        assert_eq!(single, t);
    }
}
