//! Integer difference-bound reasoning.
//!
//! The encodings only compare integer terms (variables and constants), so
//! every asserted literal normalizes to `x ≤ y + k`. Consistency is
//! negative-cycle detection (Bellman–Ford); models come from shortest-path
//! potentials relative to a zero node anchoring the constants.

use std::collections::HashMap;

use crate::term::{Context, TermData, TermId};

/// A normalized constraint `lhs ≤ rhs + k` between two nodes.
#[derive(Debug, Clone, Copy)]
struct Edge {
    /// Source node (the `rhs`).
    from: usize,
    /// Target node (the `lhs`).
    to: usize,
    weight: i64,
    /// Index of the originating input constraint, for conflict extraction.
    origin: usize,
}

/// Result of a difference-logic check.
#[derive(Debug)]
pub enum ArithResult {
    /// Consistent; integer values for every involved term.
    Consistent(HashMap<TermId, i64>),
    /// Inconsistent: indices (into the input) of constraints forming a
    /// negative cycle.
    Inconsistent(Vec<usize>),
}

/// An input constraint: `lhs ≤ rhs + offset` (use `offset = -1` for strict
/// less-than).
#[derive(Debug, Clone, Copy)]
pub struct Constraint {
    /// Left-hand term (integer sort).
    pub lhs: TermId,
    /// Right-hand term (integer sort).
    pub rhs: TermId,
    /// Slack: `lhs ≤ rhs + offset`.
    pub offset: i64,
}

/// Checks a conjunction of difference constraints over integer terms.
pub fn check(ctx: &Context, constraints: &[Constraint]) -> ArithResult {
    let mut nodes: HashMap<TermId, usize> = HashMap::new();
    let zero = 0usize; // virtual node anchoring constants at value 0
    let mut count = 1usize;
    // term → (node, offset): Var x ↦ (node_x, 0), const c ↦ (zero, c).
    let resolve = |t: TermId, nodes: &mut HashMap<TermId, usize>, count: &mut usize| {
        match ctx.data(t) {
            TermData::IntConst(c) => (zero, *c),
            _ => {
                let n = *nodes.entry(t).or_insert_with(|| {
                    let n = *count;
                    *count += 1;
                    n
                });
                (n, 0)
            }
        }
    };
    let mut edges = Vec::with_capacity(constraints.len());
    for (i, c) in constraints.iter().enumerate() {
        let (nl, ol) = resolve(c.lhs, &mut nodes, &mut count);
        let (nr, or) = resolve(c.rhs, &mut nodes, &mut count);
        // nl + ol ≤ nr + or + offset  ⟺  nl ≤ nr + (or - ol + offset)
        edges.push(Edge { from: nr, to: nl, weight: or - ol + c.offset, origin: i });
    }
    // Bellman–Ford from a virtual super-source (implemented by initializing
    // all distances to 0, which is equivalent).
    let n = count;
    let mut dist = vec![0i64; n];
    let mut pred: Vec<Option<usize>> = vec![None; n]; // predecessor edge index
    for _ in 0..n {
        let mut changed = false;
        for (ei, e) in edges.iter().enumerate() {
            if dist[e.from] + e.weight < dist[e.to] {
                dist[e.to] = dist[e.from] + e.weight;
                pred[e.to] = Some(ei);
                changed = true;
            }
        }
        if !changed {
            // Consistent; extract values: val(x) = dist(x) - dist(zero).
            let base = dist[zero];
            let mut model: HashMap<TermId, i64> = nodes
                .iter()
                .map(|(&t, &node)| (t, dist[node] - base))
                .collect();
            // Constants evaluate to themselves.
            for c in constraints {
                for t in [c.lhs, c.rhs] {
                    if let TermData::IntConst(v) = ctx.data(t) {
                        model.insert(t, *v);
                    }
                }
            }
            return ArithResult::Consistent(model);
        }
    }
    // A negative cycle exists; find a still-relaxing edge, apply it, and
    // walk the predecessor links back to land inside the cycle. The walk
    // is defensive: predecessor links can be unset for nodes that were
    // never relaxed, in which case the whole constraint set is returned as
    // the (unminimized) core — the theory layer shrinks it greedily.
    let mut start = None;
    for (ei, e) in edges.iter().enumerate() {
        if dist[e.from] + e.weight < dist[e.to] {
            pred[e.to] = Some(ei);
            start = Some(e.to);
            break;
        }
    }
    let all_origins = || (0..constraints.len()).collect::<Vec<usize>>();
    let mut node = start.expect("relaxation continued ⇒ some edge still relaxes");
    for _ in 0..n {
        match pred[node] {
            Some(ei) => node = edges[ei].from,
            None => return ArithResult::Inconsistent(all_origins()),
        }
    }
    let mut cycle = Vec::new();
    let first = node;
    loop {
        let Some(ei) = pred[node] else {
            return ArithResult::Inconsistent(all_origins());
        };
        cycle.push(edges[ei].origin);
        node = edges[ei].from;
        if node == first {
            break;
        }
        if cycle.len() > n {
            return ArithResult::Inconsistent(all_origins());
        }
    }
    cycle.dedup();
    ArithResult::Inconsistent(cycle)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(lhs: TermId, rhs: TermId, offset: i64) -> Constraint {
        Constraint { lhs, rhs, offset }
    }

    #[test]
    fn simple_chain_is_consistent() {
        let mut ctx = Context::new();
        let x = ctx.var("x", crate::term::Sort::Int);
        let y = ctx.var("y", crate::term::Sort::Int);
        // x ≤ y - 1, y ≤ 10, 3 ≤ x.
        let ten = ctx.int(10);
        let three = ctx.int(3);
        match check(&ctx, &[c(x, y, -1), c(y, ten, 0), c(three, x, 0)]) {
            ArithResult::Consistent(m) => {
                assert!(m[&x] < m[&y]);
                assert!(m[&y] <= 10);
                assert!(m[&x] >= 3);
            }
            other => panic!("expected consistent: {other:?}"),
        }
    }

    #[test]
    fn strict_cycle_is_inconsistent() {
        let mut ctx = Context::new();
        let x = ctx.var("x", crate::term::Sort::Int);
        let y = ctx.var("y", crate::term::Sort::Int);
        // x < y, y < x.
        match check(&ctx, &[c(x, y, -1), c(y, x, -1)]) {
            ArithResult::Inconsistent(core) => {
                assert_eq!(core.len(), 2);
            }
            other => panic!("expected inconsistent: {other:?}"),
        }
    }

    #[test]
    fn nonstrict_cycle_is_consistent() {
        let mut ctx = Context::new();
        let x = ctx.var("x", crate::term::Sort::Int);
        let y = ctx.var("y", crate::term::Sort::Int);
        match check(&ctx, &[c(x, y, 0), c(y, x, 0)]) {
            ArithResult::Consistent(m) => assert_eq!(m[&x], m[&y]),
            other => panic!("expected consistent: {other:?}"),
        }
    }

    #[test]
    fn constant_bounds() {
        let mut ctx = Context::new();
        let x = ctx.var("x", crate::term::Sort::Int);
        let five = ctx.int(5);
        let four = ctx.int(4);
        // x ≤ 4 ∧ 5 ≤ x is inconsistent.
        match check(&ctx, &[c(x, four, 0), c(five, x, 0)]) {
            ArithResult::Inconsistent(_) => {}
            other => panic!("expected inconsistent: {other:?}"),
        }
        // x ≤ 5 ∧ 5 ≤ x pins x = 5.
        match check(&ctx, &[c(x, five, 0), c(five, x, 0)]) {
            ArithResult::Consistent(m) => assert_eq!(m[&x], 5),
            other => panic!("expected consistent: {other:?}"),
        }
    }

    #[test]
    fn long_negative_cycle_core() {
        let mut ctx = Context::new();
        let vs: Vec<TermId> =
            (0..5).map(|i| ctx.var(format!("v{i}"), crate::term::Sort::Int)).collect();
        // v0 < v1 < v2 < v3 < v4 ≤ v0: negative cycle through all five.
        let mut cs: Vec<Constraint> = (0..4).map(|i| c(vs[i], vs[i + 1], -1)).collect();
        cs.push(c(vs[4], vs[0], 0));
        match check(&ctx, &cs) {
            ArithResult::Inconsistent(core) => {
                assert!(core.len() >= 2, "core: {core:?}");
            }
            other => panic!("expected inconsistent: {other:?}"),
        }
    }
}
