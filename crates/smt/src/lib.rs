//! A small, from-scratch lazy SMT solver.
//!
//! The C4 analysis encodes its serializability criterion into decidable
//! first-order formulas (Section 7 of the paper). This crate provides the
//! solver for the required fragment:
//!
//! * full propositional structure (Tseitin-transformed into CNF and solved
//!   by a CDCL SAT core with two-watched-literal propagation, first-UIP
//!   clause learning, VSIDS-style branching and restarts);
//! * equality over uninterpreted sorts with uninterpreted functions
//!   (congruence closure);
//! * order/difference constraints over the integers (`x ≤ y`, `x < y`,
//!   comparisons with constants) via negative-cycle detection;
//! * `distinct` constraints (used to model fresh unique row identities).
//!
//! Theory reasoning is *lazy*: the SAT core enumerates boolean models, the
//! theories refute inconsistent ones with minimized blocking clauses. The
//! queries produced by the analysis enjoy a small-model property, so this
//! simple architecture is fast in practice.
//!
//! # Example
//!
//! ```
//! use c4_smt::{Context, SatResult};
//!
//! let mut ctx = Context::new();
//! let key = ctx.uninterpreted_sort("key");
//! let x = ctx.var("x", key);
//! let y = ctx.var("y", key);
//! let z = ctx.var("z", key);
//! let xy = ctx.eq(x, y);
//! let yz = ctx.eq(y, z);
//! let xz = ctx.eq(x, z);
//! let nxz = ctx.not(xz);
//! let f = ctx.and([xy, yz, nxz]);
//! assert!(matches!(ctx.solve(&[f]), SatResult::Unsat));
//!
//! let nyz = ctx.not(yz);
//! let g = ctx.and([xy, nyz]);
//! let SatResult::Sat(model) = ctx.solve(&[g]) else { panic!() };
//! assert_eq!(model.eval_eq(x, y), Some(true));
//! assert_eq!(model.eval_eq(y, z), Some(false));
//! ```

mod arith;
mod cnf;
mod euf;
mod sat;
mod solver;
mod term;
mod theory;

pub use sat::{AssumeOutcome, Cnf, Lit, SatOutcome, SatSolver, Var};
pub use solver::{Incremental, Model, SatResult};
pub use term::{Context, FuncId, Sort, TermData, TermId, VarId};
