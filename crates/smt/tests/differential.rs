//! Differential testing of the SMT solver against brute-force evaluation
//! over small finite domains.
//!
//! Two directions, each sound on its own:
//!
//! * if brute force over the finite domains finds a model, the solver
//!   must answer SAT (a solver UNSAT would be a completeness bug) — the
//!   integer window is only a *subset* of ℤ, so a brute-force UNSAT does
//!   not bound the solver;
//! * every solver model must actually satisfy the formula
//!   (`models_satisfy`), which together with the first direction brackets
//!   the solver's behavior.

use c4_smt::{Context, SatResult, Sort, TermId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum F {
    UEq(usize, usize),
    ILe(usize, usize),
    ILtC(usize, i64),
    CLe(i64, usize),
    BVar(usize),
    Not(Box<F>),
    And(Box<F>, Box<F>),
    Or(Box<F>, Box<F>),
    Implies(Box<F>, Box<F>),
}

fn formula() -> impl Strategy<Value = F> {
    let leaf = prop_oneof![
        (0..3usize, 0..3usize).prop_map(|(a, b)| F::UEq(a, b)),
        (0..3usize, 0..3usize).prop_map(|(a, b)| F::ILe(a, b)),
        (0..3usize, -2..3i64).prop_map(|(a, c)| F::ILtC(a, c)),
        (-2..3i64, 0..3usize).prop_map(|(c, a)| F::CLe(c, a)),
        (0..2usize).prop_map(F::BVar),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| F::Not(Box::new(f))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| F::Implies(Box::new(a), Box::new(b))),
        ]
    })
}

fn to_term(
    f: &F,
    ctx: &mut Context,
    uvars: &[TermId],
    ivars: &[TermId],
    bvars: &[TermId],
) -> TermId {
    match f {
        F::UEq(a, b) => ctx.eq(uvars[*a], uvars[*b]),
        F::ILe(a, b) => ctx.le(ivars[*a], ivars[*b]),
        F::ILtC(a, c) => {
            let cc = ctx.int(*c);
            ctx.lt(ivars[*a], cc)
        }
        F::CLe(c, a) => {
            let cc = ctx.int(*c);
            ctx.le(cc, ivars[*a])
        }
        F::BVar(b) => bvars[*b],
        F::Not(g) => {
            let t = to_term(g, ctx, uvars, ivars, bvars);
            ctx.not(t)
        }
        F::And(a, b) => {
            let ta = to_term(a, ctx, uvars, ivars, bvars);
            let tb = to_term(b, ctx, uvars, ivars, bvars);
            ctx.and([ta, tb])
        }
        F::Or(a, b) => {
            let ta = to_term(a, ctx, uvars, ivars, bvars);
            let tb = to_term(b, ctx, uvars, ivars, bvars);
            ctx.or([ta, tb])
        }
        F::Implies(a, b) => {
            let ta = to_term(a, ctx, uvars, ivars, bvars);
            let tb = to_term(b, ctx, uvars, ivars, bvars);
            ctx.implies(ta, tb)
        }
    }
}

fn eval(f: &F, u: &[usize; 3], i: &[i64; 3], b: &[bool; 2]) -> bool {
    match f {
        F::UEq(a, c) => u[*a] == u[*c],
        F::ILe(a, c) => i[*a] <= i[*c],
        F::ILtC(a, c) => i[*a] < *c,
        F::CLe(c, a) => *c <= i[*a],
        F::BVar(v) => b[*v],
        F::Not(g) => !eval(g, u, i, b),
        F::And(a, c) => eval(a, u, i, b) && eval(c, u, i, b),
        F::Or(a, c) => eval(a, u, i, b) || eval(c, u, i, b),
        F::Implies(a, c) => !eval(a, u, i, b) || eval(c, u, i, b),
    }
}

fn brute_force_sat(f: &F) -> bool {
    for u0 in 0..3 {
        for u1 in 0..3 {
            for u2 in 0..3 {
                for i0 in -3..=3i64 {
                    for i1 in -3..=3i64 {
                        for i2 in -3..=3i64 {
                            for bb in 0..4u32 {
                                let b = [bb & 1 != 0, bb & 2 != 0];
                                if eval(f, &[u0, u1, u2], &[i0, i1, i2], &b) {
                                    return true;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn solver_agrees_with_brute_force(f in formula()) {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("u");
        let uvars: Vec<TermId> = (0..3).map(|i| ctx.var(format!("u{i}"), s)).collect();
        let ivars: Vec<TermId> = (0..3).map(|i| ctx.var(format!("i{i}"), Sort::Int)).collect();
        let bvars: Vec<TermId> = (0..2).map(|i| ctx.var(format!("b{i}"), Sort::Bool)).collect();
        let t = to_term(&f, &mut ctx, &uvars, &ivars, &bvars);
        let solver_sat = ctx.solve(&[t]).is_sat();
        let brute = brute_force_sat(&f);
        // Completeness direction: a finite-domain model is a ℤ model.
        prop_assert!(
            !brute || solver_sat,
            "solver UNSAT but brute force found a model: {:?}", f
        );
        // Soundness is covered by `models_satisfy`: when the solver says
        // SAT its model is checked against the formula.
    }

    /// Models returned for satisfiable formulas actually satisfy them.
    #[test]
    fn models_satisfy(f in formula()) {
        let mut ctx = Context::new();
        let s = ctx.uninterpreted_sort("u");
        let uvars: Vec<TermId> = (0..3).map(|i| ctx.var(format!("u{i}"), s)).collect();
        let ivars: Vec<TermId> = (0..3).map(|i| ctx.var(format!("i{i}"), Sort::Int)).collect();
        let bvars: Vec<TermId> = (0..2).map(|i| ctx.var(format!("b{i}"), Sort::Bool)).collect();
        let t = to_term(&f, &mut ctx, &uvars, &ivars, &bvars);
        if let SatResult::Sat(model) = ctx.solve(&[t]) {
            let u: Vec<usize> = {
                let mut reps = Vec::new();
                uvars
                    .iter()
                    .map(|&v| {
                        let r = model.class_of(v);
                        match reps.iter().position(|&x| x == r) {
                            Some(p) => p,
                            None => {
                                reps.push(r);
                                reps.len() - 1
                            }
                        }
                    })
                    .collect()
            };
            let i: Vec<i64> =
                ivars.iter().map(|&v| model.int_value(v).unwrap_or(0)).collect();
            let b: Vec<bool> =
                bvars.iter().map(|&v| model.bool_value(v).unwrap_or(false)).collect();
            prop_assert!(
                eval(&f, &[u[0], u[1], u[2]], &[i[0], i[1], i[2]], &[b[0], b[1]]),
                "model does not satisfy {:?} (u={:?} i={:?} b={:?})", f, u, i, b
            );
        }
    }
}
