//! `c4-mc`: a stateless DPOR model checker for CCL programs over the
//! multi-replica causal store simulator.
//!
//! Where the randomized dynamic baseline (`c4-dynamic`) samples
//! schedules, the model checker *enumerates* them: every
//! causally-consistent interleaving of a fixed bounded workload is
//! explored (modulo sleep-set pruning of provably equivalent orders),
//! and the concrete dependency serialization graph of every execution
//! is cycle-checked. Within its bounds the result is exhaustive — a
//! "no violation" verdict means no schedule of the workload exhibits
//! one, and every violation comes with a replayable witness schedule.
//!
//! The exploration is transaction-granular: scheduling points are
//! whole-transaction runs and inter-replica deliveries, tracked with
//! version-vector happens-before clocks. See [`explore`] for the
//! algorithm and the independence relation, [`workload`] for how
//! programs are bounded into concrete workloads, and [`trace`] for
//! witness labels and Mazurkiewicz-trace canonicalization.
//!
//! # Example
//!
//! ```
//! use c4_mc::{model_check, McConfig};
//!
//! let program = c4_lang::parse(
//!     r#"store { register Best; }
//!        txn submit(s) { if (Best.get() < s) { Best.put(s); } }"#,
//! )
//! .unwrap();
//! let report = model_check(&program, &McConfig::default());
//! assert!(report.complete());
//! // The lost-update race is found by exhaustive search.
//! assert!(report.violations.iter().any(|v| v.contains("submit")));
//! ```

pub mod explore;
pub mod trace;
pub mod vclock;
pub mod workload;

pub use explore::{
    model_check, random_walks, replay_witness, McConfig, McReport, RandomWalkReport, Witness,
};
pub use trace::StableAction;
pub use vclock::VClock;
pub use workload::{derive as derive_workloads, ScriptEntry, Workload};
