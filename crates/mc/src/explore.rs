//! The sleep-set DPOR explorer.
//!
//! The explorer enumerates causally-consistent executions of a fixed
//! [`Workload`] at transaction granularity. Scheduling actions are
//!
//! * `Run(s)` — session *s* runs its next scripted transaction
//!   (begin…commit) at its own replica, and
//! * `Deliver(t → r)` — a committed transaction is applied at a remote
//!   replica (subject to causal delivery).
//!
//! A state is terminal when every session has exhausted its script;
//! deliveries towards a replica whose session is exhausted are elided in
//! both modes (they cannot affect any transaction's snapshot, hence not
//! the DSG). On every terminal state the concrete DSG is built and
//! cycle-checked, exactly as in the randomized dynamic analysis.
//!
//! **Pruning.** In DPOR mode, sleep sets prune interleavings that only
//! reorder *independent* adjacent actions. The independence relation is
//! conservative and justified per pair:
//!
//! * `Deliver × Deliver` — co-enabled deliveries target monotone applied
//!   sets; either order yields the identical store state.
//! * `Run(s) × Deliver(t → r)`, `r ≠ s` — a run reads only its own
//!   replica; the delivery touches another. Identical state either way.
//! * `Run(s₁) × Run(s₂)`, `s₁ ≠ s₂` with disjoint *static object
//!   footprints* — the two commits swap arbitration indices, but since
//!   no object is shared, no query replay, dependency edge, or causal
//!   gate distinguishes the two orders: the DSGs are isomorphic.
//!
//! Sleep sets never skip an entire subtree blindly: every enabled,
//! non-sleeping action is explored, so each Mazurkiewicz trace keeps at
//! least one explored linearization (checked empirically against naive
//! enumeration by the differential tests via Foata keys).
//!
//! **Determinism.** Children are expanded in canonical action order, the
//! parallel mode splits a breadth-first frontier whose size is
//! independent of the worker count, jobs are merged by index, and leaf
//! caps are per-job — so findings and counts are identical at any
//! worker count.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use c4_algebra::{Alphabet, FarSpec, OpSig, RewriteSpec};
use c4_dsg::{DepOptions, Dsg};
use c4_lang::ast::Program;
use c4_lang::TxnRunner;
use c4_store::sim::{CausalSim, PendingDelivery, SimSession};
use c4_store::{History, Schedule};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::trace::{foata_key, StableAction};
use crate::vclock::VClock;
use crate::workload::{self, Workload};

/// Bounds and knobs of a model-checking run.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Sessions (and replicas) in the workload.
    pub sessions: usize,
    /// Bound on the total number of scripted transactions (`None`: the
    /// full derived scripts).
    pub depth: Option<usize>,
    /// Sleep-set pruning on (`false`: naive full enumeration, used for
    /// differential testing and pruning-ratio measurement).
    pub dpor: bool,
    /// Worker threads (results are identical for any value).
    pub workers: usize,
    /// Safety cap on explored executions per argument profile; when
    /// hit, [`McReport::capped`] is set.
    pub max_execs: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig { sessions: 2, depth: None, dpor: true, workers: 1, max_execs: 1 << 20 }
    }
}

/// A violation witness: an explored schedule whose concrete DSG is
/// cyclic, recorded with path-stable action labels so it can be
/// replayed.
#[derive(Debug, Clone)]
pub struct Witness {
    /// Transaction names on the DSG cycle.
    pub violation: BTreeSet<String>,
    /// Index of the argument profile (into the derived workloads).
    pub profile: usize,
    /// The schedule: the exact action sequence explored.
    pub trace: Vec<StableAction>,
}

/// The outcome of a model-checking run.
#[derive(Debug, Clone, Default)]
pub struct McReport {
    /// Completed executions whose DSG was checked (across profiles).
    pub executions: u64,
    /// Executions ending in a cyclic DSG.
    pub cyclic: u64,
    /// Branches skipped by sleep-set pruning.
    pub pruned: u64,
    /// Distinct Mazurkiewicz classes (Foata keys) among explored
    /// executions.
    pub classes: u64,
    /// Distinct violations: transaction-name sets on observed cycles.
    pub violations: Vec<BTreeSet<String>>,
    /// One replayable witness per violation (first found).
    pub witnesses: Vec<Witness>,
    /// Executions abandoned on a concrete execution error.
    pub exec_errors: u64,
    /// Whether any profile hit the execution cap (exploration
    /// incomplete).
    pub capped: bool,
    /// Whether the depth bound truncated the scripts.
    pub truncated: bool,
    /// Number of argument profiles explored.
    pub profiles: usize,
}

impl McReport {
    /// Whether exploration was exhaustive for the derived workloads.
    pub fn complete(&self) -> bool {
        !self.capped && self.exec_errors == 0
    }
}

/// A scheduling action. `Deliver.tx` is the global commit index, which
/// is stable along one exploration path (commits are append-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Action {
    Run { session: usize },
    Deliver { tx: usize, to: usize },
}

/// Immutable per-profile exploration context.
struct Ctx<'p> {
    program: &'p Program,
    workload: &'p Workload,
    handles: Vec<SimSession>,
    dpor: bool,
}

impl Ctx<'_> {
    fn runner(&self) -> TxnRunner<'_> {
        let mut runner = TxnRunner::new(self.program);
        for ((s, name), v) in &self.workload.locals {
            runner.locals.insert((*s, name.clone()), v.clone());
        }
        for (name, v) in &self.workload.globals {
            runner.globals.insert(name.clone(), v.clone());
        }
        runner
    }

    /// Independence of two actions (see the module docs). `Run`
    /// footprints are looked up at the node's current script position,
    /// which is frozen for as long as the action sits in a sleep set.
    fn independent(&self, node: &Node, a: &Action, b: &Action) -> bool {
        match (a, b) {
            (Action::Deliver { .. }, Action::Deliver { .. }) => true,
            (Action::Run { session }, Action::Deliver { to, .. })
            | (Action::Deliver { to, .. }, Action::Run { session }) => to != session,
            (Action::Run { session: s1 }, Action::Run { session: s2 }) => {
                s1 != s2 && {
                    let f1 = &self.workload.footprints
                        [self.workload.scripts[*s1][node.pos[*s1]].txn];
                    let f2 = &self.workload.footprints
                        [self.workload.scripts[*s2][node.pos[*s2]].txn];
                    f1.is_disjoint(f2)
                }
            }
        }
    }

    /// Dependence over stable labels (workload-static), used for Foata
    /// canonicalization. Mirrors [`Ctx::independent`].
    fn stable_dependent(&self, a: &StableAction, b: &StableAction) -> bool {
        match (a, b) {
            (StableAction::Deliver { .. }, StableAction::Deliver { .. }) => false,
            (StableAction::Run { session, .. }, StableAction::Deliver { to, .. })
            | (StableAction::Deliver { to, .. }, StableAction::Run { session, .. }) => {
                to == session
            }
            (
                StableAction::Run { session: s1, index: k1 },
                StableAction::Run { session: s2, index: k2 },
            ) => {
                s1 == s2 || {
                    let f1 =
                        &self.workload.footprints[self.workload.scripts[*s1][*k1].txn];
                    let f2 =
                        &self.workload.footprints[self.workload.scripts[*s2][*k2].txn];
                    !f1.is_disjoint(f2)
                }
            }
        }
    }

    fn txn_name(&self, session: usize, ordinal: usize) -> &str {
        &self.program.txns[self.workload.scripts[session][ordinal].txn].name
    }
}

/// One node of the execution tree: the forked simulator plus the
/// version-vector bookkeeping that makes delivery gating a clock
/// comparison.
#[derive(Clone)]
struct Node {
    sim: CausalSim,
    /// Next script position per session.
    pos: Vec<usize>,
    /// Sleep set (canonically sorted).
    sleep: Vec<Action>,
    /// The action sequence that produced this node, in stable labels.
    trace: Vec<StableAction>,
    /// Committed transaction → (session, per-session ordinal).
    tx_meta: Vec<(usize, usize)>,
    /// Committed transaction → inclusive happens-before clock.
    tx_clock: Vec<VClock>,
    /// Replica → clock of its (causally closed) applied set.
    replica_clock: Vec<VClock>,
    /// Outstanding deliveries `(tx, to)`.
    pending: Vec<(usize, usize)>,
    /// A concrete execution error occurred (branch is abandoned).
    failed: bool,
}

impl Node {
    fn root(sessions: usize) -> (Node, Vec<SimSession>) {
        let mut sim = CausalSim::new(sessions);
        let handles: Vec<SimSession> = (0..sessions).map(|r| sim.session(r)).collect();
        let node = Node {
            sim,
            pos: vec![0; sessions],
            sleep: Vec::new(),
            trace: Vec::new(),
            tx_meta: Vec::new(),
            tx_clock: Vec::new(),
            replica_clock: vec![VClock::new(sessions); sessions],
            pending: Vec::new(),
            failed: false,
        };
        (node, handles)
    }

    /// Enabled actions in canonical order. Deliveries are gated by the
    /// version-vector comparison (and elided once the target session is
    /// exhausted).
    fn enabled(&self, ctx: &Ctx<'_>) -> Vec<Action> {
        let mut out = Vec::new();
        for (s, script) in ctx.workload.scripts.iter().enumerate() {
            if self.pos[s] < script.len() {
                out.push(Action::Run { session: s });
            }
        }
        for &(tx, to) in &self.pending {
            if self.pos[to] >= ctx.workload.scripts[to].len() {
                continue; // useless delivery: target session is done
            }
            let line = self.tx_meta[tx].0;
            if self.tx_clock[tx].leq_discounting(&self.replica_clock[to], line) {
                out.push(Action::Deliver { tx, to });
            }
        }
        out.sort_unstable();
        debug_assert!(
            {
                let sim_deliverable: BTreeSet<(usize, usize)> = self
                    .sim
                    .deliverable()
                    .into_iter()
                    .filter(|d| self.pos[d.to] < ctx.workload.scripts[d.to].len())
                    .map(|d| (d.tx, d.to))
                    .collect();
                let ours: BTreeSet<(usize, usize)> = out
                    .iter()
                    .filter_map(|a| match a {
                        Action::Deliver { tx, to } => Some((*tx, *to)),
                        _ => None,
                    })
                    .collect();
                sim_deliverable == ours
            },
            "clock-gated deliverable set diverged from the simulator's"
        );
        out
    }

    fn apply(&mut self, ctx: &Ctx<'_>, runner: &mut TxnRunner<'_>, a: Action) {
        match a {
            Action::Run { session } => {
                let k = self.pos[session];
                let entry = &ctx.workload.scripts[session][k];
                let name = &ctx.program.txns[entry.txn].name;
                let res = runner.run(
                    &mut self.sim,
                    ctx.handles[session],
                    session,
                    name,
                    entry.args.clone(),
                );
                self.pos[session] = k + 1;
                let idx = self.sim.committed_count() - 1;
                debug_assert_eq!(idx, self.tx_meta.len());
                self.tx_meta.push((session, k));
                let mut clock = self.replica_clock[session].clone();
                clock.bump(session);
                self.replica_clock[session] = clock.clone();
                self.tx_clock.push(clock);
                for r in 0..self.replica_clock.len() {
                    if r != session {
                        self.pending.push((idx, r));
                    }
                }
                self.trace.push(StableAction::Run { session, index: k });
                if res.is_err() {
                    self.failed = true;
                }
            }
            Action::Deliver { tx, to } => {
                let delivered = self.sim.deliver(PendingDelivery { tx, to });
                debug_assert!(delivered, "explorer enabled an undeliverable message");
                let pos = self
                    .pending
                    .iter()
                    .position(|&p| p == (tx, to))
                    .expect("delivery is pending");
                self.pending.swap_remove(pos);
                self.replica_clock[to].join(&self.tx_clock[tx]);
                let (session, index) = self.tx_meta[tx];
                self.trace.push(StableAction::Deliver { session, index, to });
            }
        }
    }
}

/// Per-job accumulation (merged deterministically by job index).
#[derive(Default)]
struct Acc {
    executions: u64,
    cyclic: u64,
    pruned: u64,
    exec_errors: u64,
    capped: bool,
    classes: HashSet<Vec<u8>>,
    /// Violations in first-found order with their witnesses.
    found: Vec<Witness>,
}

impl Acc {
    fn absorb(&mut self, other: Acc) {
        self.executions += other.executions;
        self.cyclic += other.cyclic;
        self.pruned += other.pruned;
        self.exec_errors += other.exec_errors;
        self.capped |= other.capped;
        self.classes.extend(other.classes);
        for w in other.found {
            if !self.found.iter().any(|f| f.violation == w.violation) {
                self.found.push(w);
            }
        }
    }
}

/// Builds the DSG of a terminal node and records the outcome.
fn settle_leaf(ctx: &Ctx<'_>, node: Node, profile: usize, acc: &mut Acc) {
    if node.failed {
        acc.exec_errors += 1;
        return;
    }
    acc.executions += 1;
    acc.classes.insert(foata_key(&node.trace, |a, b| ctx.stable_dependent(a, b)));
    let trace = node.trace;
    let mut sim = node.sim;
    sim.deliver_all();
    let (history, schedule) = sim.into_history();
    if let Some(sig) = cycle_signature(ctx, &history, &schedule) {
        acc.cyclic += 1;
        if !acc.found.iter().any(|f| f.violation == sig) {
            acc.found.push(Witness { violation: sig, profile, trace });
        }
    }
}

/// The concrete-DSG cycle check shared with the dynamic baseline:
/// compute the far relations from the run's alphabet, build the DSG,
/// and name the transactions on a cycle (if any).
fn cycle_signature(
    ctx: &Ctx<'_>,
    history: &History,
    schedule: &Schedule,
) -> Option<BTreeSet<String>> {
    let alphabet: Alphabet = history.events().map(|e| OpSig::of(&e.op)).collect();
    let far = FarSpec::compute(RewriteSpec::new(), &alphabet);
    let dsg = Dsg::build(history, schedule, &far, &DepOptions::default());
    let cycle = dsg.find_cycle()?;
    // The k-th transaction of session s in the history is the k-th
    // scripted run of s.
    let mut counters = vec![0usize; ctx.workload.scripts.len()];
    let mut names = Vec::new();
    for t in history.transactions() {
        let s = t.session.0 as usize;
        names.push(ctx.txn_name(s, counters[s]).to_owned());
        counters[s] += 1;
    }
    Some(cycle.iter().flat_map(|e| [e.from, e.to]).map(|t| names[t.index()].clone()).collect())
}

/// Depth-first sleep-set exploration from `node`.
fn dfs(ctx: &Ctx<'_>, runner: &mut TxnRunner<'_>, node: Node, profile: usize, acc: &mut Acc, cap: u64) {
    if acc.executions + acc.exec_errors >= cap {
        acc.capped = true;
        return;
    }
    let enabled = node.enabled(ctx);
    if node.failed || enabled.is_empty() {
        settle_leaf(ctx, node, profile, acc);
        return;
    }
    let mut sleep = node.sleep.clone();
    for a in enabled {
        if ctx.dpor && sleep.contains(&a) {
            acc.pruned += 1;
            continue;
        }
        let mut child = node.clone();
        child.apply(ctx, runner, a);
        child.sleep = if ctx.dpor {
            sleep.iter().filter(|b| ctx.independent(&node, b, &a)).copied().collect()
        } else {
            Vec::new()
        };
        dfs(ctx, runner, child, profile, acc, cap);
        if ctx.dpor {
            sleep.push(a);
            sleep.sort_unstable();
        }
    }
}

/// Number of frontier jobs the tree is split into for the parallel
/// phase. Fixed (not derived from the worker count) so that per-job
/// caps — and therefore all results — are identical at any worker
/// count.
const FRONTIER_JOBS: usize = 64;

/// Explores one workload profile exhaustively (up to the cap).
fn explore_workload(ctx: &Ctx<'_>, config: &McConfig, profile: usize) -> Acc {
    let _sp = c4_obs::span("mc.profile");
    let (root, _) = Node::root(ctx.workload.scripts.len());
    let mut pre = Acc::default();
    let mut runner = ctx.runner();

    // Breadth-first frontier split: expand nodes (recording leaves and
    // pruning exactly as the DFS would) until enough independent jobs
    // exist. Expansion is sequential and worker-count independent.
    let mut frontier: std::collections::VecDeque<Node> = std::collections::VecDeque::new();
    frontier.push_back(root);
    while frontier.len() < FRONTIER_JOBS {
        // Narrow trees can drain entirely through this loop, so the
        // execution cap applies here too, not just per job below.
        if pre.executions + pre.exec_errors >= config.max_execs {
            pre.capped = true;
            return pre;
        }
        let Some(node) = frontier.pop_front() else { break };
        let enabled = node.enabled(ctx);
        if node.failed || enabled.is_empty() {
            settle_leaf(ctx, node, profile, &mut pre);
            continue;
        }
        let mut sleep = node.sleep.clone();
        for a in enabled {
            if ctx.dpor && sleep.contains(&a) {
                pre.pruned += 1;
                continue;
            }
            let mut child = node.clone();
            child.apply(ctx, &mut runner, a);
            child.sleep = if ctx.dpor {
                sleep.iter().filter(|b| ctx.independent(&node, b, &a)).copied().collect()
            } else {
                Vec::new()
            };
            frontier.push_back(child);
            if ctx.dpor {
                sleep.push(a);
                sleep.sort_unstable();
            }
        }
        if frontier.is_empty() {
            break;
        }
    }

    let jobs: Vec<Node> = frontier.into_iter().collect();
    if jobs.is_empty() {
        return pre;
    }
    let spent = pre.executions + pre.exec_errors;
    let cap_per_job = config.max_execs.saturating_sub(spent).div_ceil(jobs.len() as u64).max(1);

    let workers = config.workers.max(1).min(jobs.len());
    let results: Mutex<Vec<Option<Acc>>> = Mutex::new((0..jobs.len()).map(|_| None).collect());
    if workers == 1 {
        for (i, job) in jobs.into_iter().enumerate() {
            let mut acc = Acc::default();
            dfs(ctx, &mut runner, job, profile, &mut acc, cap_per_job);
            results.lock().unwrap()[i] = Some(acc);
        }
    } else {
        let next = AtomicUsize::new(0);
        let jobs = &jobs;
        let results = &results;
        let next = &next;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || {
                    let mut runner = ctx.runner();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        let mut acc = Acc::default();
                        dfs(ctx, &mut runner, jobs[i].clone(), profile, &mut acc, cap_per_job);
                        results.lock().unwrap()[i] = Some(acc);
                    }
                });
            }
        });
    }
    // Deterministic merge: by job index, regardless of completion order.
    let mut total = pre;
    for acc in results.into_inner().unwrap() {
        total.absorb(acc.expect("every job ran"));
    }
    total
}

/// Model-checks a program: derives the bounded workloads and explores
/// every causally-consistent schedule of each (modulo pruning).
pub fn model_check(program: &Program, config: &McConfig) -> McReport {
    let _sp = c4_obs::span("mc.model_check");
    let workloads = workload::derive(program, config.sessions, config.depth);
    let mut report = McReport { profiles: workloads.len(), ..McReport::default() };
    for (pi, w) in workloads.iter().enumerate() {
        report.truncated |= w.truncated;
        if program.txns.is_empty() || w.total_txns() == 0 {
            continue;
        }
        let (_, handles) = Node::root(w.scripts.len());
        let ctx = Ctx { program, workload: w, handles, dpor: config.dpor };
        let acc = explore_workload(&ctx, config, pi);
        report.executions += acc.executions;
        report.cyclic += acc.cyclic;
        report.pruned += acc.pruned;
        report.classes += acc.classes.len() as u64;
        report.exec_errors += acc.exec_errors;
        report.capped |= acc.capped;
        for wit in acc.found {
            if !report.violations.contains(&wit.violation) {
                report.violations.push(wit.violation.clone());
                report.witnesses.push(wit);
            }
        }
    }
    c4_obs::counter("mc.executions", report.executions);
    c4_obs::counter("mc.pruned", report.pruned);
    c4_obs::counter("mc.violations", report.violations.len() as u64);
    report
}

/// Replays a witness schedule on a fresh simulator, returning the
/// resulting history, schedule, and per-transaction names (callers
/// assert the concrete DSG cycle).
pub fn replay_witness(
    program: &Program,
    config: &McConfig,
    witness: &Witness,
) -> (History, Schedule, Vec<String>) {
    let workloads = workload::derive(program, config.sessions, config.depth);
    let w = &workloads[witness.profile];
    let sessions = w.scripts.len();
    let mut sim = CausalSim::new(sessions);
    let handles: Vec<SimSession> = (0..sessions).map(|r| sim.session(r)).collect();
    let ctx = Ctx { program, workload: w, handles, dpor: false };
    let mut runner = ctx.runner();
    let mut commit_of: HashMap<(usize, usize), usize> = HashMap::new();
    for a in &witness.trace {
        match *a {
            StableAction::Run { session, index } => {
                let entry = &w.scripts[session][index];
                let name = &program.txns[entry.txn].name;
                runner
                    .run(&mut sim, ctx.handles[session], session, name, entry.args.clone())
                    .expect("witness replay executes cleanly");
                commit_of.insert((session, index), sim.committed_count() - 1);
            }
            StableAction::Deliver { session, index, to } => {
                let tx = commit_of[&(session, index)];
                assert!(
                    sim.deliver(PendingDelivery { tx, to }),
                    "witness delivery must be causally deliverable"
                );
            }
        }
    }
    sim.deliver_all();
    let (history, schedule) = sim.into_history();
    let mut counters = vec![0usize; sessions];
    let mut names = Vec::new();
    for t in history.transactions() {
        let s = t.session.0 as usize;
        names.push(ctx.txn_name(s, counters[s]).to_owned());
        counters[s] += 1;
    }
    (history, schedule, names)
}

/// The outcome of randomized walks over the model checker's state
/// space (the bounded-workload analogue of the dynamic baseline).
#[derive(Debug, Clone, Default)]
pub struct RandomWalkReport {
    /// Walks executed.
    pub walks: u64,
    /// Walks ending in a cyclic DSG.
    pub cyclic: u64,
    /// Distinct violations observed.
    pub violations: Vec<BTreeSet<String>>,
}

/// Samples random maximal schedules from the same execution tree the
/// model checker enumerates. Every finding is, by construction, within
/// the model checker's search space.
pub fn random_walks(
    program: &Program,
    config: &McConfig,
    walks: u64,
    seed: u64,
) -> RandomWalkReport {
    let _sp = c4_obs::span("mc.random_walks");
    let mut rng = StdRng::seed_from_u64(seed);
    let workloads = workload::derive(program, config.sessions, config.depth);
    let mut report = RandomWalkReport::default();
    if program.txns.is_empty() {
        return report;
    }
    for (pi, w) in workloads.iter().enumerate() {
        if w.total_txns() == 0 {
            continue;
        }
        let (root, handles) = Node::root(w.scripts.len());
        let ctx = Ctx { program, workload: w, handles, dpor: false };
        let mut runner = ctx.runner();
        for _ in 0..walks {
            let mut node = root.clone();
            loop {
                let enabled = node.enabled(&ctx);
                if node.failed || enabled.is_empty() {
                    break;
                }
                let a = enabled[rng.gen_range(0..enabled.len())];
                node.apply(&ctx, &mut runner, a);
            }
            let mut acc = Acc::default();
            settle_leaf(&ctx, node, pi, &mut acc);
            report.walks += 1;
            report.cyclic += acc.cyclic;
            for f in acc.found {
                if !report.violations.contains(&f.violation) {
                    report.violations.push(f.violation);
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE1A: &str =
        "store { map M; } txn P(x,y) { M.put(x,y); } txn G(z) { M.get(z); }";
    const LOST_UPDATE: &str = r#"store { register Best; }
        txn submit(s) { if (Best.get() < s) { Best.put(s); } }"#;

    fn check(src: &str, config: &McConfig) -> McReport {
        model_check(&c4_lang::parse(src).unwrap(), config)
    }

    #[test]
    fn finds_lost_update_exhaustively() {
        let r = check(LOST_UPDATE, &McConfig::default());
        assert!(r.complete());
        assert_eq!(r.violations, vec![BTreeSet::from(["submit".to_owned()])]);
        assert!(r.cyclic > 0);
    }

    #[test]
    fn finds_the_figure1a_cross_race() {
        let r = check(FIGURE1A, &McConfig::default());
        assert!(r.complete());
        assert!(r
            .violations
            .iter()
            .any(|v| v.contains("P") && v.contains("G")));
    }

    #[test]
    fn serializable_program_has_no_violations() {
        let r = check("store { counter C; } txn bump() { C.inc(1); }", &McConfig::default());
        assert!(r.complete());
        assert!(r.violations.is_empty());
        assert_eq!(r.cyclic, 0);
    }

    #[test]
    fn dpor_agrees_with_naive_enumeration() {
        for src in [FIGURE1A, LOST_UPDATE] {
            let naive = check(src, &McConfig { dpor: false, ..McConfig::default() });
            let dpor = check(src, &McConfig::default());
            assert!(naive.complete() && dpor.complete());
            // Same Mazurkiewicz classes, same verdicts — pruning only
            // removes redundant linearizations.
            assert_eq!(naive.classes, dpor.classes, "{src}");
            assert_eq!(naive.violations, dpor.violations, "{src}");
            assert!(dpor.executions <= naive.executions);
        }
    }

    #[test]
    fn dpor_prunes_but_stays_optimal_here() {
        let r = check(FIGURE1A, &McConfig::default());
        assert!(r.pruned > 0, "sleep sets should cut interleavings");
        // On these workloads sleep sets happen to be trace-optimal:
        // exactly one execution per class.
        assert_eq!(r.executions, r.classes);
    }

    #[test]
    fn deterministic_across_runs_and_worker_counts() {
        let base = check(FIGURE1A, &McConfig::default());
        let again = check(FIGURE1A, &McConfig::default());
        let wide = check(FIGURE1A, &McConfig { workers: 4, ..McConfig::default() });
        for other in [&again, &wide] {
            assert_eq!(base.executions, other.executions);
            assert_eq!(base.pruned, other.pruned);
            assert_eq!(base.classes, other.classes);
            assert_eq!(base.violations, other.violations);
        }
    }

    #[test]
    fn witnesses_replay_to_concrete_cycles() {
        let program = c4_lang::parse(FIGURE1A).unwrap();
        let config = McConfig::default();
        let report = model_check(&program, &config);
        assert!(!report.witnesses.is_empty());
        for w in &report.witnesses {
            let (history, schedule, names) = replay_witness(&program, &config, w);
            schedule.check(&history).unwrap();
            let alphabet: Alphabet = history.events().map(|e| OpSig::of(&e.op)).collect();
            let far = FarSpec::compute(RewriteSpec::new(), &alphabet);
            let dsg = Dsg::build(&history, &schedule, &far, &DepOptions::default());
            let cycle = dsg.find_cycle().expect("witness must replay to a DSG cycle");
            let sig: BTreeSet<String> = cycle
                .iter()
                .flat_map(|e| [e.from, e.to])
                .map(|t| names[t.index()].clone())
                .collect();
            assert_eq!(sig, w.violation);
        }
    }

    #[test]
    fn random_walks_stay_within_mc_findings() {
        let program = c4_lang::parse(FIGURE1A).unwrap();
        let config = McConfig::default();
        let mc = model_check(&program, &config);
        let walks = random_walks(&program, &config, 50, 7);
        assert_eq!(walks.walks, 50 * 4); // four argument profiles
        for v in &walks.violations {
            assert!(mc.violations.contains(v), "walk finding {v:?} missed by MC");
        }
    }

    #[test]
    fn execution_cap_reports_incompleteness() {
        let r = check(FIGURE1A, &McConfig { max_execs: 10, ..McConfig::default() });
        assert!(r.capped);
        assert!(!r.complete());
        assert!(r.executions <= 4 * crate::explore::FRONTIER_JOBS as u64 + 10 * 4);
    }
}
