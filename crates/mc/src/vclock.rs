//! Version vectors (vector clocks) for happens-before tracking.
//!
//! The explorer uses one clock per committed transaction — the join of
//! the clocks of its visible set, bumped on the committing session's
//! component — and one clock per replica summarizing the applied set.
//! Because applied sets are causally closed, they are per-session
//! prefixes, so a delivery's causal-dependency check reduces to a
//! pointwise clock comparison instead of a set scan.

use std::fmt;

/// A fixed-width vector clock. Component `i` counts events of line `i`
/// in the causal past (inclusive of the owning event, where applicable).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct VClock(Vec<u32>);

impl VClock {
    /// The zero clock over `n` lines.
    pub fn new(n: usize) -> Self {
        VClock(vec![0; n])
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the clock has no lines.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Component `i`.
    pub fn get(&self, i: usize) -> u32 {
        self.0[i]
    }

    /// Increments component `i` and returns its new value.
    pub fn bump(&mut self, i: usize) -> u32 {
        self.0[i] += 1;
        self.0[i]
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VClock) {
        debug_assert_eq!(self.0.len(), other.0.len());
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Pointwise `self ≤ other`.
    pub fn leq(&self, other: &VClock) -> bool {
        debug_assert_eq!(self.0.len(), other.0.len());
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    /// `self ≤ other` with component `line` discounted by one on the
    /// left: the deliverability test for a transaction whose own commit
    /// occupies `line` in its (inclusive) clock.
    pub fn leq_discounting(&self, other: &VClock, line: usize) -> bool {
        debug_assert_eq!(self.0.len(), other.0.len());
        self.0
            .iter()
            .zip(&other.0)
            .enumerate()
            .all(|(i, (a, b))| if i == line { a.saturating_sub(1) <= *b } else { a <= b })
    }

    /// Neither `self ≤ other` nor `other ≤ self`.
    pub fn concurrent(&self, other: &VClock) -> bool {
        !self.leq(other) && !other.leq(self)
    }
}

impl fmt::Display for VClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_order() {
        let mut a = VClock::new(3);
        a.bump(0);
        a.bump(0);
        let mut b = VClock::new(3);
        b.bump(1);
        assert!(a.concurrent(&b));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.leq(&j));
        assert!(b.leq(&j));
        assert_eq!(j.get(0), 2);
        assert_eq!(j.get(1), 1);
    }

    #[test]
    fn discounted_comparison() {
        // A transaction's inclusive clock ⟨1,0⟩ (its own commit on line 0)
        // is deliverable against an empty replica clock.
        let mut t = VClock::new(2);
        t.bump(0);
        let r = VClock::new(2);
        assert!(!t.leq(&r));
        assert!(t.leq_discounting(&r, 0));
        // But not if it depends on a line-1 commit the replica lacks.
        t.bump(1);
        assert!(!t.leq_discounting(&r, 0));
    }
}
