//! Bounded concrete workloads for model checking.
//!
//! The model checker explores *schedules* of a fixed workload, so the
//! workload itself must be derived deterministically from the program:
//!
//! * **Scripts** — one per session. If the program declares
//!   `session { … }` blocks, session *i* runs the transactions of block
//!   *i mod blocks* in order; otherwise every session runs every
//!   transaction once, in declaration order. An optional depth bound
//!   truncates scripts (longest-first) until the total transaction
//!   count fits.
//! * **Argument profiles** — concrete values for transaction
//!   parameters. Three deterministic profiles cover the interesting
//!   corners of the valuation space: `shared` (every parameter the same
//!   value, maximizing contention), `distinct` (every parameter unique,
//!   maximizing value-level write conflicts), `keyed` (parameters in
//!   *key positions* — map/set keys, table rows — shared so
//!   transactions collide on objects, while value-position parameters
//!   stay unique so the colliding writes do not absorb each other), and
//!   `rotated` (key positions rotate through the sessions:
//!   the *j*-th key of session *s* is `1 + (s + j) mod sessions`, which
//!   produces the cross patterns — session 0 writes key A and reads
//!   key B while session 1 writes B and reads A — that symmetric
//!   profiles cannot reach). Profiles that produce identical workloads
//!   are deduplicated.
//!
//! Session-local constants are always distinct per session and global
//! constants always distinct from everything else: that matches the
//! static analysis' model of constants (locals are per-session fresh),
//! so the model checker never reports a violation from a valuation the
//! static analysis considers impossible. Parameters, by contrast, are
//! unconstrained statically, so any concrete profile is a sound probe.

use std::collections::BTreeSet;

use c4_lang::ast::{CallExpr, Condition, Expr, ObjectDecl, Program, Stmt};
use c4_store::op::ObjectName;
use c4_store::Value;

/// One scripted transaction instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptEntry {
    /// Index into `program.txns`.
    pub txn: usize,
    /// Concrete argument values.
    pub args: Vec<Value>,
}

/// A fully concrete bounded workload: scripts plus constant bindings.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Per-session transaction scripts.
    pub scripts: Vec<Vec<ScriptEntry>>,
    /// Session-local constant values, keyed by `(session, name)`.
    pub locals: Vec<((usize, String), Value)>,
    /// Global constant values.
    pub globals: Vec<(String, Value)>,
    /// Static object footprint of each transaction declaration (indexed
    /// like `program.txns`).
    pub footprints: Vec<BTreeSet<ObjectName>>,
    /// Profile name (`"shared"` / `"distinct"`).
    pub profile: &'static str,
    /// Whether the depth bound truncated any script.
    pub truncated: bool,
}

impl Workload {
    /// Total number of scripted transactions.
    pub fn total_txns(&self) -> usize {
        self.scripts.iter().map(Vec::len).sum()
    }
}

/// Derives the deterministic workloads (one per argument profile) for
/// `sessions` sessions bounded by `depth` total transactions.
pub fn derive(program: &Program, sessions: usize, depth: Option<usize>) -> Vec<Workload> {
    let footprints: Vec<BTreeSet<ObjectName>> =
        program.txns.iter().map(|t| t.object_footprint()).collect();
    // Scripts: declared session blocks if present, else all txns once.
    let mut scripts: Vec<Vec<usize>> = Vec::with_capacity(sessions);
    for s in 0..sessions {
        let names: Vec<usize> = if program.sessions.is_empty() {
            (0..program.txns.len()).collect()
        } else {
            program.sessions[s % program.sessions.len()]
                .iter()
                .filter_map(|n| program.txns.iter().position(|t| &t.name == n))
                .collect()
        };
        scripts.push(names);
    }
    let mut truncated = false;
    if let Some(depth) = depth {
        let mut total: usize = scripts.iter().map(Vec::len).sum();
        while total > depth {
            // Cut from the tail of the (first) longest script.
            let longest = (0..scripts.len())
                .max_by_key(|&s| scripts[s].len())
                .expect("at least one session");
            scripts[longest].pop();
            total -= 1;
            truncated = true;
        }
    }

    // Constants are profile-independent (see the module docs): locals
    // distinct per session, globals distinct from everything.
    let globals: Vec<(String, Value)> = program
        .globals
        .iter()
        .enumerate()
        .map(|(i, g)| (g.clone(), Value::int(201 + i as i64)))
        .collect();
    let mut locals = Vec::new();
    let mut local_counter = 101i64;
    for s in 0..sessions {
        for l in &program.locals {
            locals.push(((s, l.clone()), Value::int(local_counter)));
            local_counter += 1;
        }
    }

    let keyed = key_params(program);
    let mut out: Vec<Workload> = Vec::new();
    for profile in ["shared", "keyed", "rotated", "distinct"] {
        // A deterministic value source: parameters draw 1, 2, 3, … in
        // derivation order, except those the profile pins.
        let mut counter = 0i64;
        let concrete: Vec<Vec<ScriptEntry>> = scripts
            .iter()
            .enumerate()
            .map(|(s, script)| {
                let mut key_occ = 0usize; // key-position occurrences in this session
                script
                    .iter()
                    .map(|&t| ScriptEntry {
                        txn: t,
                        args: program.txns[t]
                            .params
                            .iter()
                            .map(|p| {
                                counter += 1;
                                let is_key = keyed[t].contains(p);
                                let v = match profile {
                                    "shared" => 1,
                                    "keyed" if is_key => 1,
                                    "rotated" if is_key => {
                                        let j = key_occ;
                                        1 + ((s + j) % sessions.max(1)) as i64
                                    }
                                    _ => counter,
                                };
                                if is_key {
                                    key_occ += 1;
                                }
                                Value::int(v)
                            })
                            .collect(),
                    })
                    .collect()
            })
            .collect();
        if out.iter().any(|w| w.scripts == concrete) {
            continue; // profile coincides with an earlier one
        }
        out.push(Workload {
            scripts: concrete,
            locals: locals.clone(),
            globals: globals.clone(),
            footprints: footprints.clone(),
            profile,
            truncated,
        });
    }
    out
}

/// For each transaction, the parameters that flow into a *key position*
/// of some store call: map/set/log keys, table rows, and set-valued
/// field elements. Conservative and purely syntactic (only direct
/// `Var` arguments are classified).
fn key_params(program: &Program) -> Vec<BTreeSet<String>> {
    program
        .txns
        .iter()
        .map(|t| {
            let mut keys = BTreeSet::new();
            walk_stmts(program, &t.body, &mut keys);
            keys.retain(|k| t.params.contains(k));
            keys
        })
        .collect()
}

fn walk_stmts(program: &Program, stmts: &[Stmt], keys: &mut BTreeSet<String>) {
    for s in stmts {
        match s {
            Stmt::Call(c) | Stmt::Display(c) => walk_call(program, c, keys),
            Stmt::Let(_, e) => walk_expr(program, e, keys),
            Stmt::If(c, a, b) => {
                walk_cond(program, c, keys);
                walk_stmts(program, a, keys);
                walk_stmts(program, b, keys);
            }
            Stmt::While(c, body) => {
                walk_cond(program, c, keys);
                walk_stmts(program, body, keys);
            }
            Stmt::Repeat(_, body) => walk_stmts(program, body, keys),
        }
    }
}

fn walk_cond(program: &Program, c: &Condition, keys: &mut BTreeSet<String>) {
    for (l, _, r) in &c.atoms {
        walk_expr(program, l, keys);
        walk_expr(program, r, keys);
    }
}

fn walk_expr(program: &Program, e: &Expr, keys: &mut BTreeSet<String>) {
    if let Expr::Call(c) = e {
        walk_call(program, c, keys);
    }
}

fn walk_call(program: &Program, c: &CallExpr, keys: &mut BTreeSet<String>) {
    let decl = program.object(&c.object);
    // Which argument indices of this call are key positions?
    let key_args: &[usize] = match (decl, &c.row_field) {
        (Some(ObjectDecl::Table(_)), Some((row, _))) => {
            if let Expr::Var(v) = row {
                keys.insert(v.clone());
            }
            // Set-valued field element operations key on the element.
            match c.method.as_str() {
                "add" | "remove" | "contains" => &[0],
                _ => &[],
            }
        }
        (Some(ObjectDecl::Map), None)
            if matches!(c.method.as_str(), "put" | "get" | "remove" | "contains") =>
        {
            &[0]
        }
        (Some(ObjectDecl::Set), None)
            if matches!(c.method.as_str(), "add" | "remove" | "contains") =>
        {
            &[0]
        }
        (Some(ObjectDecl::Log), None) if c.method == "has" => &[0],
        _ => &[],
    };
    for (i, a) in c.args.iter().enumerate() {
        if key_args.contains(&i) {
            if let Expr::Var(v) = a {
                keys.insert(v.clone());
            }
        }
        walk_expr(program, a, keys); // nested calls classify themselves
    }
    if let Some((row, _)) = &c.row_field {
        walk_expr(program, row, keys);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scripts_run_every_txn_once() {
        let p = c4_lang::parse(
            "store { map M; } txn P(x,y) { M.put(x,y); } txn G(z) { M.get(z); }",
        )
        .unwrap();
        let ws = derive(&p, 2, None);
        assert_eq!(ws.len(), 4, "map keys make all four profiles distinct");
        for w in &ws {
            assert_eq!(w.scripts.len(), 2);
            assert_eq!(w.total_txns(), 4);
            assert!(!w.truncated);
        }
        // Shared: every argument is 1. Distinct: all arguments unique.
        let shared = &ws[0];
        assert!(shared
            .scripts
            .iter()
            .flatten()
            .flat_map(|e| &e.args)
            .all(|v| *v == Value::int(1)));
        // Keyed: the map keys (x, z) are shared, the put value is not.
        let keyed = &ws[1];
        for script in &keyed.scripts {
            assert_eq!(script[0].args[0], Value::int(1), "P's key is pinned");
            assert_ne!(script[0].args[1], Value::int(1), "P's value is unique");
            assert_eq!(script[1].args[0], Value::int(1), "G's key is pinned");
        }
        // Rotated: sessions cross their keys (s0 writes 1 reads 2, s1
        // writes 2 reads 1).
        let rotated = &ws[2];
        assert_eq!(rotated.scripts[0][0].args[0], Value::int(1));
        assert_eq!(rotated.scripts[0][1].args[0], Value::int(2));
        assert_eq!(rotated.scripts[1][0].args[0], Value::int(2));
        assert_eq!(rotated.scripts[1][1].args[0], Value::int(1));
        let distinct = &ws[3];
        let all: Vec<_> =
            distinct.scripts.iter().flatten().flat_map(|e| e.args.clone()).collect();
        let uniq: BTreeSet<_> = all.iter().cloned().collect();
        assert_eq!(all.len(), uniq.len());
    }

    #[test]
    fn depth_truncates_longest_first() {
        let p = c4_lang::parse(
            "store { register R; } txn a() { R.get(); } txn b() { R.get(); } txn c() { R.get(); }",
        )
        .unwrap();
        let ws = derive(&p, 2, Some(4));
        let w = &ws[0];
        assert!(w.truncated);
        assert_eq!(w.total_txns(), 4);
        assert_eq!(w.scripts[0].len(), 2);
        assert_eq!(w.scripts[1].len(), 2);
    }

    #[test]
    fn declared_session_blocks_are_used() {
        let p = c4_lang::parse(
            r#"store { register R; }
               txn w() { R.put(1); }
               txn r() { R.get(); }
               session { w }
               session { r, r }"#,
        )
        .unwrap();
        let ws = derive(&p, 2, None);
        let w = &ws[0];
        assert_eq!(w.scripts[0].len(), 1);
        assert_eq!(w.scripts[1].len(), 2);
    }
}
