//! Schedule traces: path-stable action labels, Mazurkiewicz-trace
//! canonicalization (Foata normal form), and happens-before clocks.
//!
//! The explorer's raw [`crate::explore::Action`]s name committed
//! transactions by their global commit index, which is only meaningful
//! along one exploration path (swapping two independent commits swaps
//! their indices). A [`StableAction`] instead names a transaction by
//! `(session, per-session ordinal)`, which is invariant across
//! linearizations of the same trace — stable labels are what witness
//! schedules are recorded in and what canonicalization works on.

use crate::vclock::VClock;

/// An action with path-stable labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StableAction {
    /// Session `session` runs its `index`-th scripted transaction
    /// (begin…commit) at its own replica.
    Run {
        /// The session (= replica) index.
        session: usize,
        /// Ordinal of the transaction within the session.
        index: usize,
    },
    /// The `index`-th transaction of `session` is applied at replica
    /// `to`.
    Deliver {
        /// Originating session of the delivered transaction.
        session: usize,
        /// Ordinal of the transaction within its session.
        index: usize,
        /// Destination replica.
        to: usize,
    },
}

impl StableAction {
    fn encode(&self) -> [u32; 4] {
        match *self {
            StableAction::Run { session, index } => [0, session as u32, index as u32, 0],
            StableAction::Deliver { session, index, to } => {
                [1, session as u32, index as u32, to as u32]
            }
        }
    }
}

impl std::fmt::Display for StableAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            StableAction::Run { session, index } => write!(f, "run s{session}#{index}"),
            StableAction::Deliver { session, index, to } => {
                write!(f, "deliver s{session}#{index} → r{to}")
            }
        }
    }
}

/// The Foata normal form of a trace under a dependence relation: the
/// sequence of maximal antichain "steps", each sorted canonically. Two
/// linearizations of the same Mazurkiewicz trace have equal keys; two
/// inequivalent traces have different keys (the normal form is a
/// complete invariant).
pub fn foata_key(
    trace: &[StableAction],
    dep: impl Fn(&StableAction, &StableAction) -> bool,
) -> Vec<u8> {
    let mut level = vec![0u32; trace.len()];
    for i in 0..trace.len() {
        let mut l = 1;
        for j in 0..i {
            if dep(&trace[j], &trace[i]) {
                l = l.max(level[j] + 1);
            }
        }
        level[i] = l;
    }
    let max = level.iter().copied().max().unwrap_or(0) as usize;
    let mut steps: Vec<Vec<[u32; 4]>> = vec![Vec::new(); max];
    for (i, a) in trace.iter().enumerate() {
        steps[(level[i] - 1) as usize].push(a.encode());
    }
    let mut key = Vec::with_capacity(trace.len() * 16 + max);
    for step in &mut steps {
        step.sort_unstable();
        for enc in step.iter() {
            for v in enc {
                key.extend_from_slice(&v.to_le_bytes());
            }
        }
        key.push(0xFF); // step separator
    }
    key
}

/// Happens-before clocks of a trace: action `i`'s clock is the join of
/// the clocks of its dependent predecessors, bumped on `line(i)`. Then
/// `i` happens-before `j` (in the dependence closure) iff
/// `clock(i)[line(i)] ≤ clock(j)[line(i)]` and `i ≠ j`.
pub fn hb_clocks(
    trace: &[StableAction],
    lines: usize,
    line_of: impl Fn(&StableAction) -> usize,
    dep: impl Fn(&StableAction, &StableAction) -> bool,
) -> Vec<VClock> {
    let mut clocks: Vec<VClock> = Vec::with_capacity(trace.len());
    for i in 0..trace.len() {
        let mut c = VClock::new(lines);
        for j in 0..i {
            if dep(&trace[j], &trace[i]) {
                c.join(&clocks[j]);
            }
        }
        c.bump(line_of(&trace[i]));
        clocks.push(c);
    }
    clocks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(s: usize, k: usize) -> StableAction {
        StableAction::Run { session: s, index: k }
    }

    #[test]
    fn foata_identifies_equivalent_linearizations() {
        // Two sessions, fully independent runs: any interleaving is the
        // same trace.
        let dep = |a: &StableAction, b: &StableAction| match (a, b) {
            (StableAction::Run { session: s1, .. }, StableAction::Run { session: s2, .. }) => {
                s1 == s2
            }
            _ => true,
        };
        let t1 = [run(0, 0), run(1, 0), run(0, 1)];
        let t2 = [run(1, 0), run(0, 0), run(0, 1)];
        assert_eq!(foata_key(&t1, dep), foata_key(&t2, dep));
        // Dependent reordering is a different trace.
        let dep_all = |_: &StableAction, _: &StableAction| true;
        let t3 = [run(0, 0), run(1, 0)];
        let t4 = [run(1, 0), run(0, 0)];
        assert_ne!(foata_key(&t3, dep_all), foata_key(&t4, dep_all));
    }

    #[test]
    fn hb_clocks_track_dependence() {
        let dep = |a: &StableAction, b: &StableAction| match (a, b) {
            (StableAction::Run { session: s1, .. }, StableAction::Run { session: s2, .. }) => {
                s1 == s2
            }
            _ => true,
        };
        let line = |a: &StableAction| match a {
            StableAction::Run { session, .. } => *session,
            StableAction::Deliver { to, .. } => *to,
        };
        let t = [run(0, 0), run(1, 0), run(0, 1)];
        let clocks = hb_clocks(&t, 2, line, dep);
        // run(0,0) happens-before run(0,1); run(1,0) is concurrent with both.
        assert!(clocks[0].leq(&clocks[2]));
        assert!(clocks[1].concurrent(&clocks[0]));
        assert!(clocks[1].concurrent(&clocks[2]));
    }
}
