//! The transaction-lifted dependency serialization graph (DSG).

use std::collections::HashMap;
use std::fmt;

use c4_algebra::FarSpec;
use c4_store::{EventId, History, Schedule, TxId};

use crate::deps::{DepOptions, DependencyTriple};

/// Label of a DSG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EdgeLabel {
    /// Session order (`so`).
    SessionOrder,
    /// Dependency (⊕).
    Dep,
    /// Anti-dependency (⊖).
    Anti,
    /// Conflict dependency (⊗).
    Conflict,
}

impl fmt::Display for EdgeLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeLabel::SessionOrder => write!(f, "so"),
            EdgeLabel::Dep => write!(f, "⊕"),
            EdgeLabel::Anti => write!(f, "⊖"),
            EdgeLabel::Conflict => write!(f, "⊗"),
        }
    }
}

/// An edge of the DSG, between two distinct transactions, with the event
/// pair that witnesses it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxEdge {
    /// Source transaction.
    pub from: TxId,
    /// Target transaction.
    pub to: TxId,
    /// The label.
    pub label: EdgeLabel,
    /// The event pair the edge was lifted from.
    pub witness: (EventId, EventId),
}

/// The dependency serialization graph of a schedule: a multi-digraph over
/// the history's transactions.
#[derive(Debug, Clone)]
pub struct Dsg {
    tx_count: usize,
    edges: Vec<TxEdge>,
    adjacency: HashMap<TxId, Vec<usize>>,
}

impl Dsg {
    /// Builds the DSG of a schedule: computes the dependency triple and
    /// lifts `so`, ⊕, ⊖, ⊗ to transactions.
    pub fn build(
        history: &History,
        schedule: &Schedule,
        far: &FarSpec,
        opts: &DepOptions,
    ) -> Self {
        let triple = DependencyTriple::compute(history, schedule, far, opts);
        Dsg::from_triple(history, &triple)
    }

    /// Builds the DSG from a precomputed dependency triple.
    pub fn from_triple(history: &History, triple: &DependencyTriple) -> Self {
        let tx_count = history.transactions().count();
        let mut edges = Vec::new();
        let mut push = |from: TxId, to: TxId, label: EdgeLabel, witness: (EventId, EventId)| {
            if from != to {
                edges.push(TxEdge { from, to, label, witness });
            }
        };
        for (a, b) in history.so_pairs() {
            push(history.tx_of(a), history.tx_of(b), EdgeLabel::SessionOrder, (a, b));
        }
        let n = history.len();
        let ids = || (0..n).map(|i| EventId(i as u32));
        for a in ids() {
            for b in triple.dep.successors(a) {
                push(history.tx_of(a), history.tx_of(b), EdgeLabel::Dep, (a, b));
            }
            for b in triple.anti.successors(a) {
                push(history.tx_of(a), history.tx_of(b), EdgeLabel::Anti, (a, b));
            }
            for b in triple.conflict.successors(a) {
                push(history.tx_of(a), history.tx_of(b), EdgeLabel::Conflict, (a, b));
            }
        }
        // Deduplicate identical (from, to, label) triples, keeping the
        // first witness.
        let mut seen = std::collections::HashSet::new();
        edges.retain(|e| seen.insert((e.from, e.to, e.label)));
        let mut adjacency: HashMap<TxId, Vec<usize>> = HashMap::new();
        for (i, e) in edges.iter().enumerate() {
            adjacency.entry(e.from).or_default().push(i);
        }
        Dsg { tx_count, edges, adjacency }
    }

    /// The edges of the graph.
    pub fn edges(&self) -> &[TxEdge] {
        &self.edges
    }

    /// Number of transactions (nodes).
    pub fn tx_count(&self) -> usize {
        self.tx_count
    }

    /// Outgoing edges of a transaction.
    pub fn outgoing(&self, t: TxId) -> impl Iterator<Item = &TxEdge> {
        self.adjacency.get(&t).into_iter().flatten().map(|&i| &self.edges[i])
    }

    /// Whether the graph is acyclic (Theorem 1's premise).
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// Finds some cycle as a sequence of edges, if one exists.
    pub fn find_cycle(&self) -> Option<Vec<&TxEdge>> {
        // Iterative DFS with colors; returns the first back-edge cycle.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; self.tx_count];
        // parent edge index used to reconstruct the cycle
        let mut parent: Vec<Option<usize>> = vec![None; self.tx_count];
        for start in 0..self.tx_count {
            if color[start] != Color::White {
                continue;
            }
            // stack of (node, next-edge-cursor)
            let mut stack = vec![(TxId(start as u32), 0usize)];
            color[start] = Color::Gray;
            while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
                let out = self.adjacency.get(&node).map(|v| v.as_slice()).unwrap_or(&[]);
                if *cursor >= out.len() {
                    color[node.index()] = Color::Black;
                    stack.pop();
                    continue;
                }
                let ei = out[*cursor];
                *cursor += 1;
                let edge = &self.edges[ei];
                match color[edge.to.index()] {
                    Color::White => {
                        color[edge.to.index()] = Color::Gray;
                        parent[edge.to.index()] = Some(ei);
                        stack.push((edge.to, 0));
                    }
                    Color::Gray => {
                        // Found a cycle: walk parents from `node` back to
                        // `edge.to`.
                        let mut cycle = vec![ei];
                        let mut cur = node;
                        while cur != edge.to {
                            let pe = parent[cur.index()].expect("parent chain");
                            cycle.push(pe);
                            cur = self.edges[pe].from;
                        }
                        cycle.reverse();
                        return Some(cycle.into_iter().map(|i| &self.edges[i]).collect());
                    }
                    Color::Black => {}
                }
            }
        }
        None
    }

    /// Strongly connected components with more than one node (or a
    /// self-loop), via Tarjan's algorithm.
    pub fn nontrivial_sccs(&self) -> Vec<Vec<TxId>> {
        tarjan(self.tx_count, |v| {
            self.outgoing(TxId(v as u32)).map(|e| e.to.index()).collect::<Vec<_>>()
        })
        .into_iter()
        .filter(|scc| scc.len() > 1)
        .map(|scc| scc.into_iter().map(|v| TxId(v as u32)).collect())
        .collect()
    }
}

impl fmt::Display for Dsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.edges {
            writeln!(f, "{} -{}-> {}", e.from, e.label, e.to)?;
        }
        Ok(())
    }
}

/// Tarjan's SCC algorithm over `0..n` with a successor function, iterative.
pub(crate) fn tarjan(n: usize, succ: impl Fn(usize) -> Vec<usize>) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeData {
        index: u32,
        lowlink: u32,
        on_stack: bool,
    }
    const UNDEF: u32 = u32::MAX;
    let mut data = vec![NodeData { index: UNDEF, lowlink: 0, on_stack: false }; n];
    let mut next_index = 0u32;
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs = Vec::new();
    for root in 0..n {
        if data[root].index != UNDEF {
            continue;
        }
        // Explicit DFS frame: (node, successor list, cursor).
        let mut frames: Vec<(usize, Vec<usize>, usize)> = vec![(root, succ(root), 0)];
        data[root].index = next_index;
        data[root].lowlink = next_index;
        data[root].on_stack = true;
        stack.push(root);
        next_index += 1;
        while let Some(frame) = frames.last_mut() {
            let (v, succs, cursor) = (frame.0, frame.1.clone(), frame.2);
            if cursor < succs.len() {
                frame.2 += 1;
                let w = succs[cursor];
                if data[w].index == UNDEF {
                    data[w].index = next_index;
                    data[w].lowlink = next_index;
                    data[w].on_stack = true;
                    stack.push(w);
                    next_index += 1;
                    frames.push((w, succ(w), 0));
                } else if data[w].on_stack {
                    data[v].lowlink = data[v].lowlink.min(data[w].index);
                }
            } else {
                frames.pop();
                if let Some(parent) = frames.last() {
                    let p = parent.0;
                    data[p].lowlink = data[p].lowlink.min(data[v].lowlink);
                }
                if data[v].lowlink == data[v].index {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        data[w].on_stack = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_algebra::{Alphabet, OpSig, RewriteSpec};
    use c4_store::{HistoryBuilder, Operation, Value};

    fn far_for(history: &History) -> FarSpec {
        let alphabet: Alphabet = history.events().map(|e| OpSig::of(&e.op)).collect();
        FarSpec::compute(RewriteSpec::new(), &alphabet)
    }

    fn figure1c1() -> (History, Schedule) {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        let t0 = b.begin(s0);
        let e0 = b.push(t0, Operation::map_put("M", Value::str("A"), Value::int(1)));
        let t1 = b.begin(s0);
        let e1 = b.push(t1, Operation::map_get("M", Value::str("B"), Value::Unit));
        let t2 = b.begin(s1);
        let e2 = b.push(t2, Operation::map_put("M", Value::str("B"), Value::int(2)));
        let t3 = b.begin(s1);
        let e3 = b.push(t3, Operation::map_get("M", Value::str("A"), Value::Unit));
        let h = b.finish();
        let mut vis = c4_store::schedule::Relation::new(4);
        vis.insert(e0, e1);
        vis.insert(e2, e3);
        let sched = Schedule::new(&h, vec![e0, e2, e1, e3], vis).unwrap();
        (h, sched)
    }

    fn figure1c4() -> (History, Schedule) {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        let t0 = b.begin(s0);
        let e0 = b.push(t0, Operation::map_put("M", Value::str("A"), Value::int(1)));
        let t1 = b.begin(s0);
        let e1 = b.push(t1, Operation::map_get("M", Value::str("A"), Value::int(1)));
        let t2 = b.begin(s1);
        let e2 = b.push(t2, Operation::map_put("M", Value::str("B"), Value::int(2)));
        let t3 = b.begin(s1);
        let e3 = b.push(t3, Operation::map_get("M", Value::str("B"), Value::int(2)));
        let h = b.finish();
        let mut vis = c4_store::schedule::Relation::new(4);
        vis.insert(e0, e1);
        vis.insert(e2, e3);
        let sched = Schedule::new(&h, vec![e0, e2, e1, e3], vis).unwrap();
        (h, sched)
    }

    #[test]
    fn figure1c1_dsg_has_cycle() {
        let (h, s) = figure1c1();
        s.check(&h).unwrap();
        let dsg = Dsg::build(&h, &s, &far_for(&h), &DepOptions::default());
        assert!(!dsg.is_acyclic());
        let cycle = dsg.find_cycle().unwrap();
        // The cycle alternates so and ⊖ edges over the four transactions.
        assert!(cycle.len() >= 2);
        assert!(cycle.iter().any(|e| e.label == EdgeLabel::Anti));
        assert!(cycle.iter().any(|e| e.label == EdgeLabel::SessionOrder));
    }

    #[test]
    fn figure1c4_dsg_is_acyclic() {
        let (h, s) = figure1c4();
        s.check(&h).unwrap();
        let dsg = Dsg::build(&h, &s, &far_for(&h), &DepOptions::default());
        assert!(dsg.is_acyclic(), "{dsg}");
    }

    #[test]
    fn acyclic_dsg_implies_serializable_on_samples() {
        // Theorem 1 cross-check against brute-force serializability.
        let (h, s) = figure1c4();
        let dsg = Dsg::build(&h, &s, &far_for(&h), &DepOptions::default());
        if dsg.is_acyclic() {
            assert!(c4_store::schedule::serializable_by_enumeration(&h));
        }
    }

    #[test]
    fn sccs_of_cyclic_graph() {
        let (h, s) = figure1c1();
        let dsg = Dsg::build(&h, &s, &far_for(&h), &DepOptions::default());
        let sccs = dsg.nontrivial_sccs();
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), 4);
    }

    #[test]
    fn tarjan_on_simple_digraph() {
        // 0 → 1 → 2 → 0, 3 isolated.
        let sccs = tarjan(4, |v| match v {
            0 => vec![1],
            1 => vec![2],
            2 => vec![0],
            _ => vec![],
        });
        let mut sizes: Vec<_> = sccs.iter().map(|s| s.len()).collect();
        sizes.sort();
        assert_eq!(sizes, vec![1, 3]);
    }

    #[test]
    fn display_lists_edges() {
        let (h, s) = figure1c1();
        let dsg = Dsg::build(&h, &s, &far_for(&h), &DepOptions::default());
        let text = dsg.to_string();
        assert!(text.contains("so"));
        assert!(text.contains("⊖"));
    }
}
