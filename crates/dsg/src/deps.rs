//! The dependency triple `(⊕, ⊖, ⊗)` of a schedule, per (D1)–(D3).

use c4_algebra::FarSpec;
use c4_store::schedule::Relation;
use c4_store::{EventId, History, Schedule};

/// Options controlling dependency computation.
#[derive(Debug, Clone, Copy)]
pub struct DepOptions {
    /// Use the asymmetric-commutativity exemptions of Section 8 when
    /// computing anti-dependencies (enabled by default, matching the
    /// paper's experiments).
    pub asymmetric_commutativity: bool,
}

impl Default for DepOptions {
    fn default() -> Self {
        DepOptions { asymmetric_commutativity: true }
    }
}

/// The dependency triple of a history's schedule.
///
/// * `dep` (⊕ ⊆ U×Q): the query depends on the visible update;
/// * `anti` (⊖ ⊆ Q×U): the query anti-depends on the invisible update;
/// * `conflict` (⊗ ⊆ U×U): the earlier-arbitrated update conflicts with
///   the later one.
#[derive(Debug, Clone)]
pub struct DependencyTriple {
    /// Dependencies ⊕, from update to query.
    pub dep: Relation,
    /// Anti-dependencies ⊖, from query to update.
    pub anti: Relation,
    /// Conflict dependencies ⊗, from earlier to later update.
    pub conflict: Relation,
}

impl DependencyTriple {
    /// Computes the triple per (D1)–(D3).
    ///
    /// The complement-style rules of the paper ("if … and `(u,q) ∉ ⊕` then
    /// …") define the *largest* relations satisfying the conditions; we
    /// compute exactly those: a pair is in the relation unless one of the
    /// stated escape clauses holds.
    pub fn compute(
        history: &History,
        schedule: &Schedule,
        far: &FarSpec,
        opts: &DepOptions,
    ) -> Self {
        let n = history.len();
        let mut dep = Relation::new(n);
        let mut anti = Relation::new(n);
        let mut conflict = Relation::new(n);
        let ids = || (0..n).map(|i| EventId(i as u32));

        // Helper: is u's effect far-absorbed on the way to q? (the shared
        // escape clause of (D1)/(D2)):  ∃v. u ▷ v ∧ u ar→ v vı→ q.
        let absorbed_towards = |u: EventId, q: EventId| {
            ids().any(|v| {
                v != u
                    && v != q
                    && history.event(v).is_update()
                    && schedule.ar(u, v)
                    && schedule.vis(v, q)
                    && far.far_absorbs_concrete(&history.event(u).op, &history.event(v).op)
            })
        };

        for u in ids().filter(|&u| history.event(u).is_update()) {
            let u_op = &history.event(u).op;
            for q in ids().filter(|&q| history.event(q).is_query()) {
                let q_op = &history.event(q).op;
                if schedule.vis(u, q) {
                    // (D1) dependency unless far-commuting or absorbed.
                    if !far.far_commutes_concrete(u_op, q_op) && !absorbed_towards(u, q) {
                        dep.insert(u, q);
                    }
                } else if u != q {
                    // (D2) anti-dependency unless far-commuting, absorbed,
                    // or exempted by asymmetric commutativity (Section 8).
                    let exempt = opts.asymmetric_commutativity
                        && far.rewrite().anti_dep_exempt_concrete(u_op, q_op);
                    if !far.far_commutes_concrete(u_op, q_op)
                        && !exempt
                        && !absorbed_towards(u, q)
                    {
                        anti.insert(q, u);
                    }
                }
            }
            // (D3) conflicts between non-commuting updates in ar order.
            for v in ids().filter(|&v| history.event(v).is_update()) {
                if schedule.ar(u, v)
                    && !far.rewrite().commute_concrete(u_op, &history.event(v).op)
                {
                    conflict.insert(u, v);
                }
            }
        }
        DependencyTriple { dep, anti, conflict }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_algebra::{Alphabet, OpSig, RewriteSpec};
    use c4_store::{HistoryBuilder, Operation, Value};

    fn far_for(history: &History) -> FarSpec {
        let alphabet: Alphabet = history.events().map(|e| OpSig::of(&e.op)).collect();
        FarSpec::compute(RewriteSpec::new(), &alphabet)
    }

    /// Figure 3: one session, two transactions:
    ///   t0: inc(a,1); get(a):1      t1: put(a,2); get(a):2
    /// with the serial schedule. (We model `a` as a counter for inc/get and
    /// verify the absorption edge via a map-based variant below.)
    #[test]
    fn figure3_dependencies() {
        // Map-based rendition: put(a,1); get(a):1 | put(a,2); get(a):2
        let mut b = HistoryBuilder::new();
        let s = b.session();
        let t0 = b.begin(s);
        let e0 = b.push(t0, Operation::map_put("M", Value::str("a"), Value::int(1)));
        let e1 = b.push(t0, Operation::map_get("M", Value::str("a"), Value::int(1)));
        let t1 = b.begin(s);
        let e2 = b.push(t1, Operation::map_put("M", Value::str("a"), Value::int(2)));
        let e3 = b.push(t1, Operation::map_get("M", Value::str("a"), Value::int(2)));
        let h = b.finish();
        let order: Vec<_> = h.transactions().map(|t| t.id).collect();
        let sched = Schedule::serial(&h, &order);
        sched.check(&h).unwrap();
        let far = far_for(&h);
        let triple = DependencyTriple::compute(&h, &sched, &far, &DepOptions::default());
        // get(a):1 depends on put(a,1); get(a):2 depends on put(a,2).
        assert!(triple.dep.contains(e0, e1));
        assert!(triple.dep.contains(e2, e3));
        // put(a,1) is absorbed by put(a,2) on the way to get(a):2 — no dep.
        assert!(!triple.dep.contains(e0, e3));
        // put(a,2) conflicts after put(a,1).
        assert!(triple.conflict.contains(e0, e2));
        assert!(!triple.conflict.contains(e2, e0));
        // Figure 3b: get(a):1 anti-depends on the later-arbitrated,
        // invisible put(a,2).
        assert!(triple.anti.contains(e1, e2));
        // ...and that is the only anti-dependency.
        let anti_count: usize = (0..4u32)
            .flat_map(|i| (0..4u32).map(move |j| (i, j)))
            .filter(|&(i, j)| triple.anti.contains(EventId(i), EventId(j)))
            .count();
        assert_eq!(anti_count, 1);
    }

    /// The cross-session diagram of Figure 1c1 (via the simulator-free
    /// construction): each get misses the other session's put.
    #[test]
    fn figure1c1_anti_dependencies() {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        let t0 = b.begin(s0);
        let e0 = b.push(t0, Operation::map_put("M", Value::str("A"), Value::int(1)));
        let t1 = b.begin(s0);
        let e1 = b.push(t1, Operation::map_get("M", Value::str("B"), Value::Unit));
        let t2 = b.begin(s1);
        let e2 = b.push(t2, Operation::map_put("M", Value::str("B"), Value::int(2)));
        let t3 = b.begin(s1);
        let e3 = b.push(t3, Operation::map_get("M", Value::str("A"), Value::Unit));
        let h = b.finish();
        let mut vis = c4_store::schedule::Relation::new(4);
        vis.insert(e0, e1);
        vis.insert(e2, e3);
        let sched = Schedule::new(&h, vec![e0, e2, e1, e3], vis).unwrap();
        sched.check(&h).unwrap();
        let far = far_for(&h);
        let triple = DependencyTriple::compute(&h, &sched, &far, &DepOptions::default());
        // get("B"):0 anti-depends on put("B",2); get("A"):0 on put("A",1).
        assert!(triple.anti.contains(e1, e2));
        assert!(triple.anti.contains(e3, e0));
        // No cross dependencies (different keys).
        assert!(!triple.dep.contains(e0, e1));
        assert!(!triple.dep.contains(e2, e3));
        // Puts on different keys commute: no conflict edge.
        assert!(!triple.conflict.contains(e0, e2));
    }

    /// Absorption also cancels anti-dependencies: an invisible update whose
    /// absorber is visible cannot matter. Three sessions keep the absorbed
    /// update causally unrelated to its absorber.
    #[test]
    fn absorbed_invisible_update_is_no_anti_dependency() {
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        let s2 = b.session();
        let t0 = b.begin(s0);
        let e0 = b.push(t0, Operation::map_put("M", Value::str("A"), Value::int(1)));
        let t1 = b.begin(s1);
        let e1 = b.push(t1, Operation::map_put("M", Value::str("A"), Value::int(2)));
        let t2 = b.begin(s2);
        let e2 = b.push(t2, Operation::map_get("M", Value::str("A"), Value::int(2)));
        let h2 = b.finish();
        let _ = (s0, s1, s2);
        let mut vis2 = c4_store::schedule::Relation::new(3);
        vis2.insert(e1, e2);
        let sched = Schedule::new(&h2, vec![e0, e1, e2], vis2).unwrap();
        sched.check(&h2).unwrap();
        let far = far_for(&h2);
        let triple = DependencyTriple::compute(&h2, &sched, &far, &DepOptions::default());
        // e0 is invisible to e2 but absorbed by e1 (visible, later in ar):
        // no anti-dependency.
        assert!(!triple.anti.contains(e2, e0));
        assert!(triple.dep.contains(e1, e2));
    }

    #[test]
    fn asymmetric_commutativity_toggle() {
        // contains("A"):true with an invisible implicit-creation update —
        // exempt only when the Section 8 extension is on. The two creations
        // add *different* followers so neither far-absorbs the other.
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        let t0 = b.begin(s0);
        let e0 = b.push(t0, Operation::fld_add("Users", "flwrs", Value::str("A"), Value::str("B")));
        let t1 = b.begin(s1);
        let e1 = b.push(t1, Operation::fld_add("Users", "flwrs", Value::str("A"), Value::str("C")));
        let e2 = b.push(t1, Operation::tbl_contains("Users", Value::str("A"), true));
        let h = b.finish();
        let mut vis = c4_store::schedule::Relation::new(3);
        vis.insert(e1, e2);
        let sched = Schedule::new(&h, vec![e0, e1, e2], vis).unwrap();
        sched.check(&h).unwrap();
        let far = far_for(&h);
        let with = DependencyTriple::compute(&h, &sched, &far, &DepOptions::default());
        assert!(!with.anti.contains(e2, e0));
        let without = DependencyTriple::compute(
            &h,
            &sched,
            &far,
            &DepOptions { asymmetric_commutativity: false },
        );
        assert!(without.anti.contains(e2, e0));
    }
}
