//! Dependency serialization graphs and the local serializability criterion
//! (Section 4 of the paper).
//!
//! Given a history and a schedule, this crate computes the dependency
//! triple `(⊕, ⊖, ⊗)` per rules (D1)–(D3), lifts it to transactions, and
//! builds the *dependency serialization graph* (DSG). Theorem 1: if some
//! schedule of a history induces an acyclic DSG, the history is
//! serializable. Theorem 2 (locality): restricting the schedule to any
//! event subset never loses dependencies among the kept events — the
//! property that justifies the unfolding-based static analysis.
//!
//! # Example
//!
//! ```
//! use c4_store::sim::CausalSim;
//! use c4_store::op::OpKind;
//! use c4_store::Value;
//! use c4_algebra::{Alphabet, FarSpec, OpSig, RewriteSpec};
//! use c4_dsg::{Dsg, DepOptions};
//!
//! let mut sim = CausalSim::new(2);
//! let a = sim.session(0);
//! sim.begin(a);
//! sim.update(a, "M", OpKind::MapPut, vec![Value::str("A"), Value::int(1)]);
//! sim.commit(a);
//! sim.deliver_all();
//! let (history, schedule) = sim.into_history();
//!
//! let alphabet: Alphabet = history.events().map(|e| OpSig::of(&e.op)).collect();
//! let far = FarSpec::compute(RewriteSpec::new(), &alphabet);
//! let dsg = Dsg::build(&history, &schedule, &far, &DepOptions::default());
//! assert!(dsg.is_acyclic());
//! ```

pub mod deps;
pub mod graph;
pub mod locality;

pub use deps::{DepOptions, DependencyTriple};
pub use graph::{Dsg, EdgeLabel, TxEdge};
pub use locality::{locality_violations, restrict_schedule};
