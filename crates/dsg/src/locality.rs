//! Locality of the serializability criterion (Theorem 2).
//!
//! Restricting a history and its schedule to any event subset `E` yields a
//! dependency triple that contains the restriction of the original triple:
//! dependencies among kept events never disappear. Consequently a DSG
//! cycle restricted to its own events stays a cycle — the property that
//! lets the static analysis consider only small event subsets
//! (the unfoldings of Section 7).

use c4_store::schedule::Relation;
use c4_store::{EventId, History, Schedule};

/// Restricts a schedule to the events kept by a history restriction.
///
/// `map` is the event mapping returned by [`History::restrict`]: old id →
/// new id (or `None` for dropped events).
pub fn restrict_schedule(
    schedule: &Schedule,
    map: &[Option<EventId>],
    new_len: usize,
) -> Schedule {
    let ar_order: Vec<EventId> =
        schedule.ar_order().iter().filter_map(|&e| map[e.index()]).collect();
    let mut vis = Relation::new(new_len);
    for (old, &new_a) in map.iter().enumerate() {
        let Some(a) = new_a else { continue };
        for b_old in schedule.visibility().successors(EventId(old as u32)) {
            if let Some(b) = map[b_old.index()] {
                vis.insert(a, b);
            }
        }
    }
    debug_assert_eq!(ar_order.len(), new_len);
    Schedule::from_parts(ar_order, vis)
}

/// Checks the Theorem 2 containment on a concrete instance: every
/// dependency of the original schedule between kept events appears in the
/// restriction's triple.
///
/// Returns the pairs that would be missing (empty = theorem holds here).
pub fn locality_violations(
    history: &History,
    schedule: &Schedule,
    far: &c4_algebra::FarSpec,
    opts: &crate::deps::DepOptions,
    keep: impl Fn(EventId) -> bool,
) -> Vec<(EventId, EventId, &'static str)> {
    use crate::deps::DependencyTriple;
    let original = DependencyTriple::compute(history, schedule, far, opts);
    let (restricted_h, map) = history.restrict(&keep);
    let restricted_s = restrict_schedule(schedule, &map, restricted_h.len());
    let restricted = DependencyTriple::compute(&restricted_h, &restricted_s, far, opts);
    let mut missing = Vec::new();
    let n = history.len();
    for a in (0..n).map(|i| EventId(i as u32)) {
        let Some(na) = map[a.index()] else { continue };
        for (rel, name, restricted_rel) in [
            (&original.dep, "dep", &restricted.dep),
            (&original.anti, "anti", &restricted.anti),
            (&original.conflict, "conflict", &restricted.conflict),
        ] {
            for b in rel.successors(a) {
                if let Some(nb) = map[b.index()] {
                    if !restricted_rel.contains(na, nb) {
                        missing.push((a, b, name));
                    }
                }
            }
        }
    }
    missing
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::DepOptions;
    use c4_algebra::{Alphabet, FarSpec, OpSig, RewriteSpec};
    use c4_store::op::OpKind;
    use c4_store::sim::CausalSim;
    use c4_store::Value;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn far_for(history: &History) -> FarSpec {
        let alphabet: Alphabet = history.events().map(|e| OpSig::of(&e.op)).collect();
        FarSpec::compute(RewriteSpec::new(), &alphabet)
    }

    fn random_history(seed: u64) -> (History, Schedule) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sim = CausalSim::new(2);
        let sessions: Vec<_> = (0..2).map(|r| sim.session(r)).collect();
        for step in 0..12 {
            let s = sessions[rng.gen_range(0..sessions.len())];
            sim.begin(s);
            for _ in 0..rng.gen_range(1..3) {
                match rng.gen_range(0..4) {
                    0 => sim.update(
                        s,
                        "M",
                        OpKind::MapPut,
                        vec![Value::int(rng.gen_range(0..2)), Value::int(step)],
                    ),
                    1 => sim.update(s, "M", OpKind::MapRemove, vec![Value::int(rng.gen_range(0..2))]),
                    2 => {
                        let _ = sim.query(s, "M", OpKind::MapGet, vec![Value::int(rng.gen_range(0..2))]);
                    }
                    _ => {
                        let _ = sim.query(
                            s,
                            "M",
                            OpKind::MapContains,
                            vec![Value::int(rng.gen_range(0..2))],
                        );
                    }
                }
            }
            sim.commit(s);
            for d in sim.deliverable() {
                if rng.gen_bool(0.4) {
                    sim.deliver(d);
                }
            }
        }
        sim.deliver_all();
        sim.into_history()
    }

    #[test]
    fn theorem2_on_random_histories_and_subsets() {
        for seed in 0..20 {
            let (h, s) = random_history(seed);
            s.check(&h).unwrap();
            let far = far_for(&h);
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(77));
            let mask: Vec<bool> = (0..h.len()).map(|_| rng.gen_bool(0.6)).collect();
            let missing = locality_violations(&h, &s, &far, &DepOptions::default(), |e| {
                mask[e.index()]
            });
            assert!(missing.is_empty(), "seed {seed}: locality violated: {missing:?}");
        }
    }

    #[test]
    fn restriction_preserves_cycles() {
        // The Figure 1c1 cycle restricted to its own four events stays a
        // cycle.
        use crate::graph::Dsg;
        use c4_store::{HistoryBuilder, Operation};
        let mut b = HistoryBuilder::new();
        let s0 = b.session();
        let s1 = b.session();
        let t0 = b.begin(s0);
        let e0 = b.push(t0, Operation::map_put("M", Value::str("A"), Value::int(1)));
        let t1 = b.begin(s0);
        let e1 = b.push(t1, Operation::map_get("M", Value::str("B"), Value::Unit));
        let t2 = b.begin(s1);
        let e2 = b.push(t2, Operation::map_put("M", Value::str("B"), Value::int(2)));
        let t3 = b.begin(s1);
        let e3 = b.push(t3, Operation::map_get("M", Value::str("A"), Value::Unit));
        // Extra unrelated events that we will drop.
        let t4 = b.begin(s0);
        b.push(t4, Operation::ctr_inc("C", 1));
        let h = b.finish();
        let mut vis = c4_store::schedule::Relation::new(5);
        vis.insert(e0, e1);
        vis.insert(e2, e3);
        vis.insert(e0, EventId(4));
        vis.insert(e1, EventId(4));
        let sched = Schedule::new(&h, vec![e0, e2, e1, e3, EventId(4)], vis).unwrap();
        sched.check(&h).unwrap();
        let far = far_for(&h);
        let full = Dsg::build(&h, &sched, &far, &DepOptions::default());
        assert!(!full.is_acyclic());
        let (rh, map) = h.restrict(|e| e.index() < 4);
        let rs = restrict_schedule(&sched, &map, rh.len());
        rs.check_pre(&rh).unwrap();
        let rdsg = Dsg::build(&rh, &rs, &far, &DepOptions::default());
        assert!(!rdsg.is_acyclic());
    }
}
