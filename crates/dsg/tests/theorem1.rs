//! Cross-validation of Theorem 1: whenever some schedule of a history has
//! an acyclic DSG, the history is serializable (checked against the
//! brute-force reference of `c4-store`).

use c4_algebra::{Alphabet, FarSpec, OpSig, RewriteSpec};
use c4_dsg::{DepOptions, Dsg};
use c4_store::op::OpKind;
use c4_store::sim::CausalSim;
use c4_store::{schedule::serializable_by_enumeration, Value};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn random_run(seed: u64, txns: usize) -> (c4_store::History, c4_store::Schedule) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sim = CausalSim::new(2);
    let sessions: Vec<_> = (0..2).map(|r| sim.session(r)).collect();
    for step in 0..txns {
        let s = sessions[rng.gen_range(0..sessions.len())];
        sim.begin(s);
        for _ in 0..rng.gen_range(1..3) {
            match rng.gen_range(0..6) {
                0 => sim.update(
                    s,
                    "M",
                    OpKind::MapPut,
                    vec![Value::int(0), Value::int(step as i64)],
                ),
                1 => sim.update(s, "S", OpKind::SetAdd, vec![Value::int(rng.gen_range(0..2))]),
                2 => {
                    let _ = sim.query(s, "M", OpKind::MapGet, vec![Value::int(0)]);
                }
                3 => {
                    let _ = sim.query(s, "S", OpKind::SetContains, vec![Value::int(rng.gen_range(0..2))]);
                }
                4 => sim.update(s, "C", OpKind::CtrInc, vec![Value::int(1)]),
                _ => {
                    let _ = sim.query(s, "M", OpKind::MapGet, vec![Value::int(rng.gen_range(0..2))]);
                }
            }
        }
        sim.commit(s);
        for d in sim.deliverable() {
            if rng.gen_bool(0.15) {
                sim.deliver(d);
            }
        }
    }
    sim.deliver_all();
    sim.into_history()
}

#[test]
fn acyclic_dsg_implies_serializable() {
    // The asymmetric extension is unproven; Theorem 1 is validated with it
    // disabled.
    let opts = DepOptions { asymmetric_commutativity: false };
    let mut acyclic = 0;
    let mut cyclic = 0;
    for seed in 0..400 {
        let (h, s) = random_run(seed, 5);
        s.check(&h).expect("simulator schedules are legal");
        let alphabet: Alphabet = h.events().map(|e| OpSig::of(&e.op)).collect();
        let far = FarSpec::compute(RewriteSpec::new(), &alphabet);
        let dsg = Dsg::build(&h, &s, &far, &opts);
        if dsg.is_acyclic() {
            acyclic += 1;
            assert!(
                serializable_by_enumeration(&h),
                "seed {seed}: acyclic DSG but not serializable\n{h}\n{dsg}"
            );
        } else {
            cyclic += 1;
        }
    }
    // The workload must exercise both outcomes to be meaningful.
    assert!(acyclic > 10, "too few acyclic runs ({acyclic})");
    assert!(cyclic > 5, "too few cyclic runs ({cyclic})");
}

#[test]
fn serial_schedules_always_have_acyclic_anti_free_cycles() {
    // A serial schedule can still have DSG cycles through ⊗/⊕ only if they
    // disagree with ar; by construction ⊕/⊗ follow ar and so follows ar in
    // a serial schedule obtained by topological order, so the DSG restricted
    // to a serial schedule of a serializable history found by enumeration is
    // acyclic.
    for seed in 0..50 {
        let (h, _s) = random_run(seed, 4);
        if !serializable_by_enumeration(&h) {
            continue;
        }
        // Find the witnessing serial order.
        let txs: Vec<_> = h.transactions().map(|t| t.id).collect();
        let mut found = None;
        permute(&h, &mut txs.clone(), 0, &mut found);
        let order = found.expect("serializable history has a serial order");
        let sched = c4_store::Schedule::serial(&h, &order);
        if sched.check(&h).is_err() {
            continue;
        }
        let alphabet: Alphabet = h.events().map(|e| OpSig::of(&e.op)).collect();
        let far = FarSpec::compute(RewriteSpec::new(), &alphabet);
        let dsg = Dsg::build(&h, &sched, &far, &DepOptions { asymmetric_commutativity: false });
        assert!(dsg.is_acyclic(), "seed {seed}: serial schedule with cyclic DSG\n{dsg}");
    }
}

fn permute(
    h: &c4_store::History,
    perm: &mut Vec<c4_store::TxId>,
    k: usize,
    found: &mut Option<Vec<c4_store::TxId>>,
) {
    if found.is_some() {
        return;
    }
    if k == perm.len() {
        let mut pos = vec![0usize; perm.len()];
        for (i, &t) in perm.iter().enumerate() {
            pos[t.index()] = i;
        }
        for s in h.transactions() {
            for t in h.transactions() {
                if s.session == t.session
                    && s.id != t.id
                    && h.session_position(s.events[0]) < h.session_position(t.events[0])
                    && pos[s.id.index()] > pos[t.id.index()]
                {
                    return;
                }
            }
        }
        let sched = c4_store::Schedule::serial(h, perm);
        if sched.check(h).is_ok() {
            *found = Some(perm.clone());
        }
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        permute(h, perm, k + 1, found);
        perm.swap(k, i);
    }
}
