//! Algebraic reasoning about store operations (Sections 3, 4.1 and 8 of the
//! paper).
//!
//! The serializability criterion is built on three relations between
//! events:
//!
//! * **plain commutativity** — `e f ≡ f e`;
//! * **far absorption `e ▷ f`** — `e β f ≡ β f` for every update sequence
//!   `β` over the store's operation alphabet (R1);
//! * **far commutativity `u ↷º q`** — the coinductive strengthening of
//!   commutativity that tolerates intermediate events (R2).
//!
//! All three are exposed *symbolically* as [`SpecFormula`]s over the two
//! events' arguments (Definition 2 — the rewrite specification, cf.
//! Figure 6), and can be evaluated on concrete events. The far variants are
//! computed relative to an operation [`Alphabet`] by a fixpoint refinement:
//! they coincide with the plain versions for the standard data types and
//! properly degrade in the presence of the `copy` operation (Section 4.1).
//!
//! Section 8's *asymmetric commutativity* is available through
//! [`RewriteSpec::anti_dep_exempt`], used when computing anti-dependencies.
//!
//! # Example
//!
//! ```
//! use c4_algebra::{Alphabet, RewriteSpec, OpSig};
//! use c4_store::{op::OpKind, Operation, Value};
//!
//! let spec = RewriteSpec::new();
//! let a = Operation::map_put("M", Value::str("A"), Value::int(1));
//! let b = Operation::map_get("M", Value::str("B"), Value::int(0));
//! assert!(spec.commute_concrete(&a, &b)); // different keys
//! let c = Operation::map_get("M", Value::str("A"), Value::int(1));
//! assert!(!spec.commute_concrete(&a, &c)); // same key
//! ```

mod consistency;
mod far;
mod spec;
mod tables;

pub use consistency::{Lit, Slot, SlotTerm};
pub use far::{Alphabet, FarSpec};
pub use spec::{ArgTerm, Side, SpecFormula};
pub use tables::RewriteSpec;

use c4_store::op::{ObjectName, OpKind};

/// The *signature* of an operation: the object it acts on and its symbol.
///
/// Rewrite specifications are indexed by pairs of signatures; operations on
/// different objects always commute and never absorb each other.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpSig {
    /// The object the operation acts on.
    pub object: ObjectName,
    /// The operation symbol.
    pub kind: OpKind,
}

impl OpSig {
    /// Creates a signature.
    pub fn new(object: impl Into<ObjectName>, kind: OpKind) -> Self {
        OpSig { object: object.into(), kind }
    }

    /// The signature of a concrete operation.
    pub fn of(op: &c4_store::Operation) -> Self {
        OpSig { object: op.object.clone(), kind: op.kind.clone() }
    }

    /// Whether the signature denotes an update.
    pub fn is_update(&self) -> bool {
        self.kind.is_update()
    }

    /// Whether the signature denotes a query.
    pub fn is_query(&self) -> bool {
        self.kind.is_query()
    }
}

impl std::fmt::Display for OpSig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.object, self.kind)
    }
}
