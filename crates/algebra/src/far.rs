//! Far commutativity `↷º` and far absorption `▷` (Section 4.1).
//!
//! The far relations are computed relative to an operation [`Alphabet`] —
//! the set of operation signatures a program (or the whole store) may
//! issue. They are obtained from the plain relations by a downward fixpoint
//! refinement implementing the rules (R1) and (R2):
//!
//! * `u ▷ v` (far) holds if `u` is plainly absorbed by `v` and, for every
//!   possible interposer `m` in the alphabet, every instance of `m` either
//!   plainly commutes with `u` or far-absorbs `u`. (If so, `u` can be pushed
//!   rightward through any `β` until it meets `v`, giving `u β v ≡ β v`.)
//! * `u ↷º q` holds if `u` and `q` plainly commute and for every interposer
//!   `m`: `u` and `m` plainly commute, or `m ↷º q`, or `u ▷ m` — rule (R2)
//!   verbatim, as a greatest fixpoint.
//!
//! Checking "for every instance of `m`" is an entailment over argument
//! (dis)equalities, decided by the union-find checker in
//! [`crate::consistency`]. When a counter-instance exists, the refinement
//! conservatively drops the pair to `False` (rather than strengthening the
//! formula), which loses no precision on alphabets without `copy`: there,
//! far and plain versions coincide (verified by unit and property tests),
//! exactly as Section 4.1 states for the mainstream data stores.

use std::collections::HashMap;

use crate::consistency::formulas_consistent;
use crate::spec::SpecFormula;
use crate::tables::RewriteSpec;
use crate::OpSig;

/// The operation alphabet: the signatures a program may issue.
#[derive(Debug, Clone, Default)]
pub struct Alphabet {
    sigs: Vec<OpSig>,
}

impl Alphabet {
    /// Creates an alphabet from signatures (duplicates are removed).
    pub fn new(sigs: impl IntoIterator<Item = OpSig>) -> Self {
        let mut v: Vec<OpSig> = sigs.into_iter().collect();
        v.sort();
        v.dedup();
        Alphabet { sigs: v }
    }

    /// The signatures of the alphabet.
    pub fn sigs(&self) -> &[OpSig] {
        &self.sigs
    }

    /// The update signatures of the alphabet.
    pub fn updates(&self) -> impl Iterator<Item = &OpSig> {
        self.sigs.iter().filter(|s| s.is_update())
    }

    /// The query signatures of the alphabet.
    pub fn queries(&self) -> impl Iterator<Item = &OpSig> {
        self.sigs.iter().filter(|s| s.is_query())
    }
}

impl FromIterator<OpSig> for Alphabet {
    fn from_iter<T: IntoIterator<Item = OpSig>>(iter: T) -> Self {
        Alphabet::new(iter)
    }
}

/// The far relations over a fixed alphabet.
#[derive(Debug, Clone)]
pub struct FarSpec {
    spec: RewriteSpec,
    far_abs: HashMap<(OpSig, OpSig), SpecFormula>,
    far_com_uq: HashMap<(OpSig, OpSig), SpecFormula>,
}

impl FarSpec {
    /// Computes the far relations for the given alphabet (R1)/(R2).
    pub fn compute(spec: RewriteSpec, alphabet: &Alphabet) -> Self {
        let updates: Vec<&OpSig> = alphabet.updates().collect();
        let queries: Vec<&OpSig> = alphabet.queries().collect();

        // --- far absorption: gfp refinement of plain absorption ---
        let mut far_abs: HashMap<(OpSig, OpSig), SpecFormula> = HashMap::new();
        for &u in &updates {
            for &v in &updates {
                far_abs.insert((u.clone(), v.clone()), spec.absorbs(u, v));
            }
        }
        loop {
            let mut changed = false;
            for &u in &updates {
                for &v in &updates {
                    let key = (u.clone(), v.clone());
                    let cur = far_abs[&key].clone();
                    if cur.is_false() {
                        continue;
                    }
                    // Slots: 0 = u, 1 = v, 2 = interposer m. An interposer
                    // is harmless when u commutes past it, or it far-absorbs
                    // u, or v far-absorbs *it* (then m itself can be removed
                    // in front of v first).
                    let broken = updates.iter().any(|&m| {
                        let com_um = spec.commute(u, m);
                        let abs_um = far_abs[&(u.clone(), m.clone())].clone();
                        let abs_mv = far_abs[&(m.clone(), v.clone())].clone();
                        formulas_consistent(&[
                            (&cur, false, 0, 1),
                            (&com_um, true, 0, 2),
                            (&abs_um, true, 0, 2),
                            (&abs_mv, true, 2, 1),
                        ])
                    });
                    if broken {
                        far_abs.insert(key, SpecFormula::False);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // --- far commutativity u ↷º q: gfp refinement of plain (R2) ---
        let mut far_com_uq: HashMap<(OpSig, OpSig), SpecFormula> = HashMap::new();
        for &u in &updates {
            for &q in &queries {
                far_com_uq.insert((u.clone(), q.clone()), spec.commute(u, q));
            }
        }
        loop {
            let mut changed = false;
            for &u in &updates {
                for &q in &queries {
                    let key = (u.clone(), q.clone());
                    let cur = far_com_uq[&key].clone();
                    if cur.is_false() {
                        continue;
                    }
                    // Slots: 0 = u, 1 = q, 2 = interposer m.
                    let broken = updates.iter().any(|&m| {
                        let com_um = spec.commute(u, m);
                        let far_mq = far_com_uq[&(m.clone(), q.clone())].clone();
                        let abs_um = far_abs[&(u.clone(), m.clone())].clone();
                        formulas_consistent(&[
                            (&cur, false, 0, 1),
                            (&com_um, true, 0, 2),
                            (&far_mq, true, 2, 1),
                            (&abs_um, true, 0, 2),
                        ])
                    });
                    if broken {
                        far_com_uq.insert(key, SpecFormula::False);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        FarSpec { spec, far_abs, far_com_uq }
    }

    /// The underlying rewrite specification.
    pub fn rewrite(&self) -> &RewriteSpec {
        &self.spec
    }

    /// Far absorption `src ▷ tgt` as a formula over the pair's arguments.
    ///
    /// Pairs outside the alphabet fall back to `False` (conservative).
    pub fn far_absorbs(&self, src: &OpSig, tgt: &OpSig) -> SpecFormula {
        self.far_abs.get(&(src.clone(), tgt.clone())).cloned().unwrap_or(SpecFormula::False)
    }

    /// Far commutativity between two events, extended to all event kinds as
    /// in Section 4.1: update/query pairs use (R2) in either orientation,
    /// query/query pairs always far-commute, update/update pairs use plain
    /// commutativity.
    pub fn far_commutes(&self, src: &OpSig, tgt: &OpSig) -> SpecFormula {
        match (src.is_update(), tgt.is_update()) {
            (true, true) => self.spec.commute(src, tgt),
            (false, false) => SpecFormula::True,
            (true, false) => self
                .far_com_uq
                .get(&(src.clone(), tgt.clone()))
                .cloned()
                .unwrap_or(SpecFormula::False),
            (false, true) => self
                .far_com_uq
                .get(&(tgt.clone(), src.clone()))
                .map(|f| f.flipped())
                .unwrap_or(SpecFormula::False),
        }
    }

    /// Evaluates far commutativity on concrete operations.
    pub fn far_commutes_concrete(
        &self,
        src: &c4_store::Operation,
        tgt: &c4_store::Operation,
    ) -> bool {
        self.far_commutes(&OpSig::of(src), &OpSig::of(tgt)).eval(src, tgt)
    }

    /// Evaluates far absorption on concrete operations.
    pub fn far_absorbs_concrete(
        &self,
        src: &c4_store::Operation,
        tgt: &c4_store::Operation,
    ) -> bool {
        self.far_absorbs(&OpSig::of(src), &OpSig::of(tgt)).eval(src, tgt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c4_store::op::OpKind;

    fn map_alphabet(with_copy: bool) -> Alphabet {
        let mut sigs = vec![
            OpSig::new("M", OpKind::MapPut),
            OpSig::new("M", OpKind::MapRemove),
            OpSig::new("M", OpKind::MapGet),
            OpSig::new("M", OpKind::MapContains),
            OpSig::new("M", OpKind::MapSize),
        ];
        if with_copy {
            sigs.push(OpSig::new("M", OpKind::MapCopy));
        }
        Alphabet::new(sigs)
    }

    #[test]
    fn without_copy_far_equals_plain() {
        let spec = RewriteSpec::new();
        let far = FarSpec::compute(spec, &map_alphabet(false));
        for a in map_alphabet(false).sigs() {
            for b in map_alphabet(false).sigs() {
                assert_eq!(
                    far.far_commutes(a, b),
                    match (a.is_update(), b.is_update()) {
                        (false, false) => SpecFormula::True,
                        _ => spec.commute(a, b),
                    },
                    "far ≠ plain commutativity for {a} / {b}"
                );
                if a.is_update() && b.is_update() {
                    assert_eq!(far.far_absorbs(a, b), spec.absorbs(a, b), "far abs {a} / {b}");
                }
            }
        }
    }

    #[test]
    fn with_copy_put_no_longer_far_absorbed() {
        // Section 4.1: put(a,2) no longer far-absorbs inc(a,1) when copy is
        // present; the map analogue is put ▷ put collapsing.
        let spec = RewriteSpec::new();
        let far = FarSpec::compute(spec, &map_alphabet(true));
        let put = OpSig::new("M", OpKind::MapPut);
        assert!(far.far_absorbs(&put, &put).is_false());
        assert!(!spec.absorbs(&put, &put).is_false());
    }

    #[test]
    fn with_copy_put_no_longer_far_commutes_with_get() {
        // Section 4.1: put(a,2) no longer far-commutes with get(b):2 since
        // cp(a,b) commutes with or absorbs neither of them.
        let spec = RewriteSpec::new();
        let far = FarSpec::compute(spec, &map_alphabet(true));
        let put = OpSig::new("M", OpKind::MapPut);
        let get = OpSig::new("M", OpKind::MapGet);
        assert!(far.far_commutes(&put, &get).is_false());
        assert!(!spec.commute(&put, &get).is_false());
    }

    #[test]
    fn copy_does_not_affect_other_objects() {
        let spec = RewriteSpec::new();
        let mut sigs = map_alphabet(true).sigs().to_vec();
        sigs.push(OpSig::new("N", OpKind::MapPut));
        sigs.push(OpSig::new("N", OpKind::MapGet));
        let far = FarSpec::compute(spec, &Alphabet::new(sigs));
        let put_n = OpSig::new("N", OpKind::MapPut);
        let get_n = OpSig::new("N", OpKind::MapGet);
        assert_eq!(far.far_commutes(&put_n, &get_n), spec.commute(&put_n, &get_n));
        assert_eq!(far.far_absorbs(&put_n, &put_n), spec.absorbs(&put_n, &put_n));
    }

    #[test]
    fn table_alphabet_far_equals_plain() {
        let spec = RewriteSpec::new();
        let sigs = vec![
            OpSig::new("Quiz", OpKind::TblAddRow),
            OpSig::new("Quiz", OpKind::TblDeleteRow),
            OpSig::new("Quiz", OpKind::TblContains),
            OpSig::new("Quiz", OpKind::FldSet("question".into())),
            OpSig::new("Quiz", OpKind::FldGet("question".into())),
            OpSig::new("Quiz", OpKind::FldSet("answer".into())),
            OpSig::new("Quiz", OpKind::FldGet("answer".into())),
        ];
        let alphabet = Alphabet::new(sigs.clone());
        let far = FarSpec::compute(spec, &alphabet);
        for a in &sigs {
            for b in &sigs {
                if a.is_update() && b.is_query() {
                    assert_eq!(far.far_commutes(a, b), spec.commute(a, b), "{a} / {b}");
                }
                if a.is_update() && b.is_update() {
                    assert_eq!(far.far_absorbs(a, b), spec.absorbs(a, b), "{a} / {b}");
                }
            }
        }
    }

    #[test]
    fn queries_always_far_commute() {
        let spec = RewriteSpec::new();
        let far = FarSpec::compute(spec, &map_alphabet(true));
        let get = OpSig::new("M", OpKind::MapGet);
        let size = OpSig::new("M", OpKind::MapSize);
        assert!(far.far_commutes(&get, &size).is_true());
    }

    #[test]
    fn far_commute_concrete_orientation() {
        let spec = RewriteSpec::new();
        let far = FarSpec::compute(spec, &map_alphabet(false));
        let put = c4_store::Operation::map_put("M", c4_store::Value::str("a"), c4_store::Value::int(1));
        let get_b =
            c4_store::Operation::map_get("M", c4_store::Value::str("b"), c4_store::Value::int(0));
        assert!(far.far_commutes_concrete(&put, &get_b));
        assert!(far.far_commutes_concrete(&get_b, &put));
        let get_a =
            c4_store::Operation::map_get("M", c4_store::Value::str("a"), c4_store::Value::int(1));
        assert!(!far.far_commutes_concrete(&put, &get_a));
        assert!(!far.far_commutes_concrete(&get_a, &put));
    }

    #[test]
    fn alphabet_dedups() {
        let a = Alphabet::new(vec![
            OpSig::new("M", OpKind::MapPut),
            OpSig::new("M", OpKind::MapPut),
        ]);
        assert_eq!(a.sigs().len(), 1);
    }
}
