//! The rewrite specification: plain commutativity, plain absorption and the
//! asymmetric-commutativity exemptions, per pair of operation signatures
//! (Definition 2; cf. Figure 6 for the dictionary instance).

use c4_store::op::OpKind;
use c4_store::{Operation, Value};

use crate::spec::{ArgTerm, Side, SpecFormula};
use crate::OpSig;

/// The rewrite specification for the store's data types.
///
/// All methods return [`SpecFormula`]s over the pair `(src, tgt)`; the
/// formulas are *exact* characterizations for the shipped data types (and
/// validated against the operational semantics by property tests), except
/// where noted conservative.
#[derive(Debug, Clone, Copy, Default)]
pub struct RewriteSpec;

impl RewriteSpec {
    /// Creates the specification.
    pub fn new() -> Self {
        RewriteSpec
    }

    /// Plain commutativity: a sufficient (for our types: exact) condition
    /// for `src tgt ≡ tgt src`. Symmetric.
    pub fn commute(&self, src: &OpSig, tgt: &OpSig) -> SpecFormula {
        if src.object != tgt.object {
            return SpecFormula::True;
        }
        if src.is_query() && tgt.is_query() {
            return SpecFormula::True;
        }
        // Normalize: handle each unordered pair once, updates first.
        if src.is_query() && tgt.is_update() {
            return self.commute(tgt, src).flipped();
        }
        commute_same_object(&src.kind, &tgt.kind)
    }

    /// Plain absorption `src ▷ tgt`: a sufficient condition for
    /// `src tgt ≡ tgt` (the target absorbs the source). Non-symmetric;
    /// `False` unless both are updates on the same object.
    pub fn absorbs(&self, src: &OpSig, tgt: &OpSig) -> SpecFormula {
        if src.object != tgt.object || !src.is_update() || !tgt.is_update() {
            return SpecFormula::False;
        }
        absorbs_same_object(&src.kind, &tgt.kind)
    }

    /// Asymmetric-commutativity exemption (Section 8): a condition under
    /// which making the invisible update `src` visible to the query `tgt`
    /// cannot change the query's recorded outcome, *even though* the two do
    /// not commute plainly.
    ///
    /// The canonical instance: `contains(k):true` stays legal when an
    /// implicit-creation update on `k` becomes visible — in the paradoxical
    /// situation where the record existed before its creation, it also
    /// exists after it. Dually, `contains(k):false` stays legal under a
    /// newly visible removal of `k`.
    ///
    /// The paper does not prove soundness of this extension and neither do
    /// we; it is used only for anti-dependency computation and can be
    /// disabled (see the analysis feature toggles in the `c4` crate).
    pub fn anti_dep_exempt(&self, src: &OpSig, tgt: &OpSig) -> SpecFormula {
        if src.object != tgt.object || !src.is_update() || !tgt.is_query() {
            return SpecFormula::False;
        }
        asym_same_object(&src.kind, &tgt.kind)
    }

    /// Evaluates plain commutativity on two concrete operations.
    pub fn commute_concrete(&self, src: &Operation, tgt: &Operation) -> bool {
        self.commute(&OpSig::of(src), &OpSig::of(tgt)).eval(src, tgt)
    }

    /// Evaluates plain absorption `src ▷ tgt` on two concrete operations.
    pub fn absorbs_concrete(&self, src: &Operation, tgt: &Operation) -> bool {
        self.absorbs(&OpSig::of(src), &OpSig::of(tgt)).eval(src, tgt)
    }

    /// Evaluates the asymmetric exemption on two concrete operations.
    pub fn anti_dep_exempt_concrete(&self, src: &Operation, tgt: &Operation) -> bool {
        self.anti_dep_exempt(&OpSig::of(src), &OpSig::of(tgt)).eval(src, tgt)
    }
}

fn eq00() -> SpecFormula {
    SpecFormula::args_eq(0, 0)
}
fn ne00() -> SpecFormula {
    SpecFormula::args_ne(0, 0)
}
fn eq11() -> SpecFormula {
    SpecFormula::args_eq(1, 1)
}
fn ne11() -> SpecFormula {
    SpecFormula::args_ne(1, 1)
}
fn eq(si: usize, ti: usize) -> SpecFormula {
    SpecFormula::args_eq(si, ti)
}
fn ne(si: usize, ti: usize) -> SpecFormula {
    SpecFormula::args_ne(si, ti)
}
fn ret_tgt_is(b: bool) -> SpecFormula {
    SpecFormula::Eq(ArgTerm::Ret(Side::Tgt), ArgTerm::Const(Value::bool(b)))
}

/// Commutativity for two operations on the same object; `src` is an update.
fn commute_same_object(src: &OpKind, tgt: &OpKind) -> SpecFormula {
    use OpKind::*;
    use SpecFormula as F;
    match (src, tgt) {
        // --- register ---
        (RegPut, RegPut) => eq00(),
        (RegPut, RegGet) => F::False,
        // --- counter ---
        (CtrInc, CtrInc) => F::True,
        (CtrInc, CtrGet) => F::False,
        // --- set ---
        (SetAdd, SetAdd) | (SetRemove, SetRemove) => F::True,
        (SetAdd, SetRemove) | (SetRemove, SetAdd) => ne00(),
        (SetAdd, SetContains) | (SetRemove, SetContains) => ne00(),
        (SetAdd, SetSize) | (SetRemove, SetSize) => F::False,
        // --- log ---
        // Appends do not commute in general: `last` observes their order.
        (LogAppend, LogAppend) => eq00(),
        (LogAppend, LogLast) | (LogAppend, LogCount) => F::False,
        (LogAppend, LogHas) => ne00(),
        // --- map ---
        (MapPut, MapPut) => F::or([ne00(), eq11()]),
        (MapPut, MapRemove) | (MapRemove, MapPut) => ne00(),
        (MapRemove, MapRemove) => F::True,
        (MapPut, MapGet) | (MapPut, MapContains) => ne00(),
        (MapPut, MapSize) => F::False,
        (MapRemove, MapGet) | (MapRemove, MapContains) => ne00(),
        (MapRemove, MapSize) => F::False,
        (MapCopy, MapPut) | (MapCopy, MapRemove) => F::and([ne00(), ne(1, 0)]),
        (MapPut, MapCopy) | (MapRemove, MapCopy) => F::and([ne00(), ne(0, 1)]),
        (MapCopy, MapCopy) => F::or([
            F::and([ne(1, 0), ne(0, 1), ne11()]),
            F::and([eq00(), eq11()]),
        ]),
        (MapCopy, MapGet) | (MapCopy, MapContains) => ne(1, 0),
        (MapCopy, MapSize) => F::False,
        // --- table: row-level ---
        (TblAddRow, TblAddRow) | (TblDeleteRow, TblDeleteRow) => F::True,
        (TblAddRow, TblDeleteRow) | (TblDeleteRow, TblAddRow) => ne00(),
        (TblAddRow, TblContains) | (TblDeleteRow, TblContains) => ne00(),
        // add_row only affects presence; field updates also establish
        // presence, so both orders agree.
        (TblAddRow, FldSet(_) | FldAdd(_) | FldRemove(_)) => F::True,
        (FldSet(_) | FldAdd(_) | FldRemove(_), TblAddRow) => F::True,
        (TblAddRow, FldGet(_) | FldContains(_) | FldSize(_)) => F::True,
        (TblDeleteRow, FldSet(_) | FldAdd(_) | FldRemove(_)) => ne00(),
        (FldSet(_) | FldAdd(_) | FldRemove(_), TblDeleteRow) => ne00(),
        (TblDeleteRow, FldGet(_) | FldContains(_) | FldSize(_)) => ne00(),
        // Field updates create the record, so they do not commute with a
        // row-existence query on the same row.
        (FldSet(_) | FldAdd(_) | FldRemove(_), TblContains) => ne00(),
        // --- table: field-level ---
        (FldSet(f), FldSet(g)) => {
            if f == g {
                F::or([ne00(), eq11()])
            } else {
                F::True
            }
        }
        (FldSet(f), FldGet(g)) => same_field_or(f, g, ne00()),
        (FldSet(f), FldAdd(g) | FldRemove(g)) | (FldAdd(f) | FldRemove(f), FldSet(g)) => {
            // Distinct field types; only name-colliding (ill-typed) programs
            // hit the conservative same-name case.
            same_field_or(f, g, F::False)
        }
        (FldSet(f), FldContains(g) | FldSize(g)) => same_field_or(f, g, F::False),
        (FldAdd(_), FldAdd(_)) | (FldRemove(_), FldRemove(_)) => F::True,
        (FldAdd(f), FldRemove(g)) | (FldRemove(f), FldAdd(g)) => {
            same_field_or(f, g, F::or([ne00(), ne11()]))
        }
        (FldAdd(f) | FldRemove(f), FldContains(g)) => {
            same_field_or(f, g, F::or([ne00(), ne11()]))
        }
        (FldAdd(f) | FldRemove(f), FldSize(g)) => same_field_or(f, g, ne00()),
        (FldAdd(f) | FldRemove(f), FldGet(g)) => same_field_or(f, g, F::False),
        // Ill-typed combinations on the same object: conservative.
        _ => SpecFormula::False,
    }
}

fn same_field_or(f: &c4_store::op::FieldName, g: &c4_store::op::FieldName, same: SpecFormula) -> SpecFormula {
    if f == g {
        same
    } else {
        SpecFormula::True
    }
}

/// Absorption `src ▷ tgt` for two updates on the same object.
fn absorbs_same_object(src: &OpKind, tgt: &OpKind) -> SpecFormula {
    use OpKind::*;
    use SpecFormula as F;
    match (src, tgt) {
        (RegPut, RegPut) => F::True,
        // Appends accumulate; nothing absorbs them.
        (SetAdd | SetRemove, SetAdd | SetRemove) => eq00(),
        (MapPut | MapRemove, MapPut | MapRemove) => eq00(),
        // copy(s,d) is absorbed by a write to d (unless the write reads d).
        (MapCopy, MapPut) | (MapCopy, MapRemove) => eq(1, 0),
        (MapCopy, MapCopy) => F::and([eq11(), ne(1, 0)]),
        (MapPut, MapCopy) | (MapRemove, MapCopy) => F::and([eq(0, 1), ne00()]),
        // Row-level absorption: delete clears both presence and fields.
        (TblAddRow, TblAddRow) => eq00(),
        (TblAddRow, TblDeleteRow) => eq00(),
        (TblDeleteRow, TblDeleteRow) => eq00(),
        (TblAddRow, FldSet(_) | FldAdd(_) | FldRemove(_)) => eq00(),
        (FldSet(_) | FldAdd(_) | FldRemove(_), TblDeleteRow) => eq00(),
        (FldSet(f), FldSet(g)) if f == g => eq00(),
        (FldAdd(f) | FldRemove(f), FldAdd(g) | FldRemove(g)) if f == g => {
            F::and([eq00(), eq11()])
        }
        _ => F::False,
    }
}

/// Asymmetric exemption for an update (`src`) and a query (`tgt`) on the
/// same object.
fn asym_same_object(src: &OpKind, tgt: &OpKind) -> SpecFormula {
    use OpKind::*;
    use SpecFormula as F;
    match (src, tgt) {
        // Creation-style updates vs. a membership query that observed true.
        (MapPut, MapContains) => F::and([eq00(), ret_tgt_is(true)]),
        (MapCopy, MapContains) => F::and([eq(1, 0), ret_tgt_is(true)]),
        (SetAdd, SetContains) => F::and([eq00(), ret_tgt_is(true)]),
        (LogAppend, LogHas) => F::and([eq00(), ret_tgt_is(true)]),
        (TblAddRow, TblContains) => F::and([eq00(), ret_tgt_is(true)]),
        (FldSet(_) | FldAdd(_) | FldRemove(_), TblContains) => {
            F::and([eq00(), ret_tgt_is(true)])
        }
        (FldAdd(f), FldContains(g)) if f == g => F::and([eq00(), eq11(), ret_tgt_is(true)]),
        // Removal-style updates vs. a membership query that observed false.
        (MapRemove, MapContains) => F::and([eq00(), ret_tgt_is(false)]),
        (SetRemove, SetContains) => F::and([eq00(), ret_tgt_is(false)]),
        (TblDeleteRow, TblContains) => F::and([eq00(), ret_tgt_is(false)]),
        (FldRemove(f), FldContains(g)) if f == g => F::and([eq00(), eq11(), ret_tgt_is(false)]),
        _ => F::False,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(object: &str, kind: OpKind) -> OpSig {
        OpSig::new(object, kind)
    }

    #[test]
    fn different_objects_always_commute_never_absorb() {
        let spec = RewriteSpec::new();
        let a = sig("M", OpKind::MapPut);
        let b = sig("N", OpKind::MapPut);
        assert!(spec.commute(&a, &b).is_true());
        assert!(spec.absorbs(&a, &b).is_false());
    }

    #[test]
    fn figure6_dictionary_commutativity() {
        let spec = RewriteSpec::new();
        let put = sig("M", OpKind::MapPut);
        let get = sig("M", OpKind::MapGet);
        let size = sig("M", OpKind::MapSize);
        // put/put: k≠k' ∨ v=v'
        assert_eq!(
            spec.commute(&put, &put),
            SpecFormula::or([SpecFormula::args_ne(0, 0), SpecFormula::args_eq(1, 1)])
        );
        // put/get: k≠k'
        assert_eq!(spec.commute(&put, &get), SpecFormula::args_ne(0, 0));
        // put/size: false
        assert!(spec.commute(&put, &size).is_false());
        // get/get, get/size, size/size: true
        assert!(spec.commute(&get, &get).is_true());
        assert!(spec.commute(&get, &size).is_true());
        assert!(spec.commute(&size, &size).is_true());
    }

    #[test]
    fn figure6_dictionary_absorption() {
        let spec = RewriteSpec::new();
        let put = sig("M", OpKind::MapPut);
        assert_eq!(spec.absorbs(&put, &put), SpecFormula::args_eq(0, 0));
        let get = sig("M", OpKind::MapGet);
        assert!(spec.absorbs(&put, &get).is_false());
        assert!(spec.absorbs(&get, &put).is_false());
    }

    #[test]
    fn query_update_lookup_is_flipped() {
        let spec = RewriteSpec::new();
        let put = sig("M", OpKind::MapPut);
        let get = sig("M", OpKind::MapGet);
        // com(get, put) must constrain get's key (src side) against put's
        // key (tgt side).
        let f = spec.commute(&get, &put);
        let get_op = Operation::map_get("M", Value::str("A"), Value::Unit);
        let put_op = Operation::map_put("M", Value::str("A"), Value::int(1));
        assert!(!f.eval(&get_op, &put_op));
        let put_other = Operation::map_put("M", Value::str("B"), Value::int(1));
        assert!(f.eval(&get_op, &put_other));
    }

    #[test]
    fn concrete_examples_from_section_3() {
        let spec = RewriteSpec::new();
        // put(a,2) and get(b):1 commute.
        assert!(spec.commute_concrete(
            &Operation::map_put("M", Value::str("a"), Value::int(2)),
            &Operation::map_get("M", Value::str("b"), Value::int(1)),
        ));
        // put(a,2) absorbs ... is absorbed: inc example uses counters; here
        // map-level: put(a,1) ▷ put(a,2) but not vice versa is not
        // expressible (both absorb); use remove: put(a,1) ▷ remove(a).
        assert!(spec.absorbs_concrete(
            &Operation::map_put("M", Value::str("a"), Value::int(1)),
            &Operation::map_remove("M", Value::str("a")),
        ));
        assert!(!spec.absorbs_concrete(
            &Operation::ctr_inc("C", 1),
            &Operation::ctr_inc("C", 2),
        ));
    }

    #[test]
    fn counter_inc_commutes_with_inc_not_get() {
        let spec = RewriteSpec::new();
        let inc = sig("C", OpKind::CtrInc);
        let get = sig("C", OpKind::CtrGet);
        assert!(spec.commute(&inc, &inc).is_true());
        assert!(spec.commute(&inc, &get).is_false());
    }

    #[test]
    fn copy_interactions() {
        let spec = RewriteSpec::new();
        let cp = Operation::map_copy("M", Value::str("a"), Value::str("b"));
        let put_a = Operation::map_put("M", Value::str("a"), Value::int(2));
        let put_c = Operation::map_put("M", Value::str("c"), Value::int(2));
        let get_b = Operation::map_get("M", Value::str("b"), Value::int(2));
        assert!(!spec.commute_concrete(&cp, &put_a)); // cp reads a
        assert!(spec.commute_concrete(&cp, &put_c));
        assert!(!spec.commute_concrete(&cp, &get_b)); // cp writes b
        // put(b,_) absorbs cp(a,b), and cp(a,b) absorbs put(b,_) too (the
        // copy overwrites b with a's value either way):
        let put_b = Operation::map_put("M", Value::str("b"), Value::int(9));
        assert!(spec.absorbs_concrete(&cp, &put_b));
        assert!(spec.absorbs_concrete(&put_b, &cp));
        // but a copy *reading* the put's key does not absorb it:
        let cp_from_b = Operation::map_copy("M", Value::str("b"), Value::str("c"));
        assert!(!spec.absorbs_concrete(&put_b, &cp_from_b));
    }

    #[test]
    fn implicit_creation_blocks_contains_commute() {
        let spec = RewriteSpec::new();
        let add = Operation::fld_add("Users", "flwrs", Value::str("A"), Value::str("B"));
        let contains = Operation::tbl_contains("Users", Value::str("A"), false);
        assert!(!spec.commute_concrete(&add, &contains));
        let contains_other = Operation::tbl_contains("Users", Value::str("X"), false);
        assert!(spec.commute_concrete(&add, &contains_other));
    }

    #[test]
    fn asymmetric_exemption_for_contains_true() {
        let spec = RewriteSpec::new();
        let add = Operation::fld_add("Users", "flwrs", Value::str("A"), Value::str("B"));
        let contains_true = Operation::tbl_contains("Users", Value::str("A"), true);
        let contains_false = Operation::tbl_contains("Users", Value::str("A"), false);
        assert!(spec.anti_dep_exempt_concrete(&add, &contains_true));
        assert!(!spec.anti_dep_exempt_concrete(&add, &contains_false));
        // Deletion is exempt against contains:false.
        let del = Operation::tbl_delete_row("Users", Value::str("A"));
        assert!(spec.anti_dep_exempt_concrete(&del, &contains_false));
        assert!(!spec.anti_dep_exempt_concrete(&del, &contains_true));
    }

    #[test]
    fn delete_row_does_not_absorb_backwards() {
        let spec = RewriteSpec::new();
        let del = Operation::tbl_delete_row("T", Value::row(1));
        let set = Operation::fld_set("T", "f", Value::row(1), Value::int(1));
        // set ▷ delete (delete wipes the field):
        assert!(spec.absorbs_concrete(&set, &del));
        // delete ▷ set does NOT hold (set revives presence but not other fields):
        assert!(!spec.absorbs_concrete(&del, &set));
    }

    #[test]
    fn commutativity_is_symmetric_on_samples() {
        let spec = RewriteSpec::new();
        let samples = [
            Operation::map_put("M", Value::str("a"), Value::int(1)),
            Operation::map_put("M", Value::str("b"), Value::int(2)),
            Operation::map_remove("M", Value::str("a")),
            Operation::map_get("M", Value::str("a"), Value::int(1)),
            Operation::map_contains("M", Value::str("b"), true),
            Operation::map_copy("M", Value::str("a"), Value::str("b")),
        ];
        for a in &samples {
            for b in &samples {
                assert_eq!(
                    spec.commute_concrete(a, b),
                    spec.commute_concrete(b, a),
                    "commutativity must be symmetric for {a} / {b}"
                );
            }
        }
    }
}
