//! Symbolic specification formulas over pairs of events.
//!
//! A [`SpecFormula`] is a boolean combination of equalities between
//! argument/return terms of two events, called the *source* (first) and
//! *target* (second). The rewrite specification (Definition 2) assigns such
//! a formula to every pair of operation signatures; instantiating the
//! formula on the two events' concrete arguments decides the specified
//! property.

use c4_store::{Operation, Value};

/// Which of the two events of a pair a term refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The first event of the pair (`argsrc`).
    Src,
    /// The second event of the pair (`argtgt`).
    Tgt,
}

impl Side {
    /// The other side.
    pub fn flip(self) -> Side {
        match self {
            Side::Src => Side::Tgt,
            Side::Tgt => Side::Src,
        }
    }
}

/// A term of a specification formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ArgTerm {
    /// The `i`-th argument of one of the two events.
    Arg(Side, usize),
    /// The return value of one of the two events (queries only).
    Ret(Side),
    /// A constant value.
    Const(Value),
}

impl ArgTerm {
    /// Evaluates the term on a concrete event pair.
    ///
    /// # Panics
    ///
    /// Panics when referencing a missing argument or the return value of an
    /// update.
    pub fn eval(&self, src: &Operation, tgt: &Operation) -> Value {
        match self {
            ArgTerm::Arg(Side::Src, i) => src.args[*i].clone(),
            ArgTerm::Arg(Side::Tgt, i) => tgt.args[*i].clone(),
            ArgTerm::Ret(Side::Src) => src.ret.clone().expect("src has a return value"),
            ArgTerm::Ret(Side::Tgt) => tgt.ret.clone().expect("tgt has a return value"),
            ArgTerm::Const(v) => v.clone(),
        }
    }

    /// Swaps source and target references (for symmetric lookups).
    pub fn flipped(&self) -> ArgTerm {
        match self {
            ArgTerm::Arg(s, i) => ArgTerm::Arg(s.flip(), *i),
            ArgTerm::Ret(s) => ArgTerm::Ret(s.flip()),
            ArgTerm::Const(v) => ArgTerm::Const(v.clone()),
        }
    }
}

/// A boolean combination of term equalities over an event pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecFormula {
    /// Always holds.
    True,
    /// Never holds.
    False,
    /// Equality of two terms.
    Eq(ArgTerm, ArgTerm),
    /// Negation.
    Not(Box<SpecFormula>),
    /// Conjunction.
    And(Vec<SpecFormula>),
    /// Disjunction.
    Or(Vec<SpecFormula>),
}

impl SpecFormula {
    /// `argsrc_i = argtgt_j`.
    pub fn args_eq(i: usize, j: usize) -> Self {
        SpecFormula::Eq(ArgTerm::Arg(Side::Src, i), ArgTerm::Arg(Side::Tgt, j))
    }

    /// `argsrc_i ≠ argtgt_j`.
    pub fn args_ne(i: usize, j: usize) -> Self {
        SpecFormula::Not(Box::new(Self::args_eq(i, j)))
    }

    /// Negation (smart constructor).
    pub fn negate(self) -> Self {
        match self {
            SpecFormula::True => SpecFormula::False,
            SpecFormula::False => SpecFormula::True,
            SpecFormula::Not(f) => *f,
            f => SpecFormula::Not(Box::new(f)),
        }
    }

    /// Conjunction (smart constructor, flattens and simplifies).
    pub fn and(fs: impl IntoIterator<Item = SpecFormula>) -> Self {
        let mut out = Vec::new();
        for f in fs {
            match f {
                SpecFormula::True => {}
                SpecFormula::False => return SpecFormula::False,
                SpecFormula::And(inner) => out.extend(inner),
                f => out.push(f),
            }
        }
        match out.len() {
            0 => SpecFormula::True,
            1 => out.pop().unwrap(),
            _ => SpecFormula::And(out),
        }
    }

    /// Disjunction (smart constructor, flattens and simplifies).
    pub fn or(fs: impl IntoIterator<Item = SpecFormula>) -> Self {
        let mut out = Vec::new();
        for f in fs {
            match f {
                SpecFormula::False => {}
                SpecFormula::True => return SpecFormula::True,
                SpecFormula::Or(inner) => out.extend(inner),
                f => out.push(f),
            }
        }
        match out.len() {
            0 => SpecFormula::False,
            1 => out.pop().unwrap(),
            _ => SpecFormula::Or(out),
        }
    }

    /// Evaluates the formula on a concrete event pair.
    pub fn eval(&self, src: &Operation, tgt: &Operation) -> bool {
        match self {
            SpecFormula::True => true,
            SpecFormula::False => false,
            SpecFormula::Eq(a, b) => a.eval(src, tgt) == b.eval(src, tgt),
            SpecFormula::Not(f) => !f.eval(src, tgt),
            SpecFormula::And(fs) => fs.iter().all(|f| f.eval(src, tgt)),
            SpecFormula::Or(fs) => fs.iter().any(|f| f.eval(src, tgt)),
        }
    }

    /// Swaps source and target references (for symmetric lookups).
    pub fn flipped(&self) -> SpecFormula {
        match self {
            SpecFormula::True => SpecFormula::True,
            SpecFormula::False => SpecFormula::False,
            SpecFormula::Eq(a, b) => SpecFormula::Eq(a.flipped(), b.flipped()),
            SpecFormula::Not(f) => SpecFormula::Not(Box::new(f.flipped())),
            SpecFormula::And(fs) => SpecFormula::And(fs.iter().map(|f| f.flipped()).collect()),
            SpecFormula::Or(fs) => SpecFormula::Or(fs.iter().map(|f| f.flipped()).collect()),
        }
    }

    /// Whether the formula is syntactically `True`.
    pub fn is_true(&self) -> bool {
        matches!(self, SpecFormula::True)
    }

    /// Whether the formula is syntactically `False`.
    pub fn is_false(&self) -> bool {
        matches!(self, SpecFormula::False)
    }

    /// Converts to disjunctive normal form: a list of conjunctions of
    /// literals `(positive, lhs, rhs)`.
    ///
    /// Used by the small built-in consistency checker; the formulas in the
    /// rewrite specification are tiny, so the exponential worst case is
    /// irrelevant.
    pub fn to_dnf(&self) -> Vec<Vec<(bool, ArgTerm, ArgTerm)>> {
        match self {
            SpecFormula::True => vec![vec![]],
            SpecFormula::False => vec![],
            SpecFormula::Eq(a, b) => vec![vec![(true, a.clone(), b.clone())]],
            SpecFormula::Not(f) => {
                // Negate by De Morgan on the fly.
                match &**f {
                    SpecFormula::True => vec![],
                    SpecFormula::False => vec![vec![]],
                    SpecFormula::Eq(a, b) => vec![vec![(false, a.clone(), b.clone())]],
                    SpecFormula::Not(g) => g.to_dnf(),
                    SpecFormula::And(fs) => {
                        SpecFormula::or(fs.iter().map(|g| g.clone().negate())).to_dnf()
                    }
                    SpecFormula::Or(fs) => {
                        SpecFormula::and(fs.iter().map(|g| g.clone().negate())).to_dnf()
                    }
                }
            }
            SpecFormula::And(fs) => {
                let mut acc: Vec<Vec<(bool, ArgTerm, ArgTerm)>> = vec![vec![]];
                for f in fs {
                    let d = f.to_dnf();
                    let mut next = Vec::new();
                    for conj in &acc {
                        for dd in &d {
                            let mut c = conj.clone();
                            c.extend(dd.iter().cloned());
                            next.push(c);
                        }
                    }
                    acc = next;
                }
                acc
            }
            SpecFormula::Or(fs) => fs.iter().flat_map(|f| f.to_dnf()).collect(),
        }
    }
}

impl std::fmt::Display for SpecFormula {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn term(t: &ArgTerm) -> String {
            match t {
                ArgTerm::Arg(Side::Src, i) => format!("argsrc{i}"),
                ArgTerm::Arg(Side::Tgt, i) => format!("argtgt{i}"),
                ArgTerm::Ret(Side::Src) => "retsrc".into(),
                ArgTerm::Ret(Side::Tgt) => "rettgt".into(),
                ArgTerm::Const(v) => v.to_string(),
            }
        }
        match self {
            SpecFormula::True => write!(f, "true"),
            SpecFormula::False => write!(f, "false"),
            SpecFormula::Eq(a, b) => write!(f, "{} = {}", term(a), term(b)),
            SpecFormula::Not(g) => match &**g {
                SpecFormula::Eq(a, b) => write!(f, "{} ≠ {}", term(a), term(b)),
                g => write!(f, "¬({g})"),
            },
            SpecFormula::And(fs) => {
                let parts: Vec<_> = fs.iter().map(|g| format!("({g})")).collect();
                write!(f, "{}", parts.join(" ∧ "))
            }
            SpecFormula::Or(fs) => {
                let parts: Vec<_> = fs.iter().map(|g| format!("({g})")).collect();
                write!(f, "{}", parts.join(" ∨ "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_on_concrete_pair() {
        let put = Operation::map_put("M", Value::str("A"), Value::int(1));
        let get = Operation::map_get("M", Value::str("A"), Value::int(1));
        let same_key = SpecFormula::args_eq(0, 0);
        assert!(same_key.eval(&put, &get));
        let diff_key = SpecFormula::args_ne(0, 0);
        assert!(!diff_key.eval(&put, &get));
    }

    #[test]
    fn ret_terms() {
        let q = Operation::map_contains("M", Value::str("A"), true);
        let u = Operation::map_put("M", Value::str("A"), Value::int(1));
        let f = SpecFormula::Eq(ArgTerm::Ret(Side::Src), ArgTerm::Const(Value::bool(true)));
        assert!(f.eval(&q, &u));
    }

    #[test]
    fn smart_constructors_simplify() {
        assert!(SpecFormula::and([SpecFormula::True, SpecFormula::True]).is_true());
        assert!(SpecFormula::and([SpecFormula::True, SpecFormula::False]).is_false());
        assert!(SpecFormula::or([SpecFormula::False]).is_false());
        assert!(SpecFormula::or([SpecFormula::False, SpecFormula::True]).is_true());
        assert_eq!(SpecFormula::True.negate(), SpecFormula::False);
        assert_eq!(SpecFormula::args_eq(0, 0).negate().negate(), SpecFormula::args_eq(0, 0));
    }

    #[test]
    fn dnf_of_or_and() {
        let f = SpecFormula::or([
            SpecFormula::args_ne(0, 0),
            SpecFormula::and([SpecFormula::args_eq(0, 0), SpecFormula::args_eq(1, 1)]),
        ]);
        let dnf = f.to_dnf();
        assert_eq!(dnf.len(), 2);
        assert_eq!(dnf[0].len(), 1);
        assert!(!dnf[0][0].0); // negative literal
        assert_eq!(dnf[1].len(), 2);
    }

    #[test]
    fn dnf_of_negation_uses_de_morgan() {
        let f = SpecFormula::and([SpecFormula::args_eq(0, 0), SpecFormula::args_eq(1, 1)]).negate();
        let dnf = f.to_dnf();
        assert_eq!(dnf.len(), 2);
        assert!(dnf.iter().all(|c| c.len() == 1 && !c[0].0));
    }

    #[test]
    fn flipped_swaps_sides() {
        let f = SpecFormula::args_eq(0, 1);
        let g = f.flipped();
        let a = Operation::map_put("M", Value::str("A"), Value::str("B"));
        let b = Operation::map_put("M", Value::str("X"), Value::str("A"));
        // f: a.args[0] == b.args[1]  ("A" == "A") — true.
        assert!(f.eval(&a, &b));
        // g: a.args[1] == b.args[0]? flipped of Eq(Arg(Src,0),Arg(Tgt,1)) is
        // Eq(Arg(Tgt,0),Arg(Src,1)): b.args[0] == a.args[1] ("X" == "B") — false.
        assert!(!g.eval(&a, &b));
    }

    #[test]
    fn display_is_paperlike() {
        assert_eq!(SpecFormula::args_eq(0, 0).to_string(), "argsrc0 = argtgt0");
        assert_eq!(SpecFormula::args_ne(1, 0).to_string(), "argsrc1 ≠ argtgt0");
    }
}
