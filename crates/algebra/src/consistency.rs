//! A tiny satisfiability checker for conjunctions of (dis)equalities.
//!
//! The far-commutativity/-absorption fixpoint (see [`crate::far`]) needs to
//! decide satisfiability of small conjunctions of equality literals over the
//! arguments of up to three event *slots* plus constants. This is the
//! classic union-find fragment: equalities merge classes, disequalities and
//! distinct constants refute.

use std::collections::HashMap;

use c4_store::Value;

use crate::spec::{ArgTerm, SpecFormula};

/// Identifies one of the event slots of a consistency query.
pub type Slot = usize;

/// A term over slots: an argument or return position of a slot, or a
/// constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SlotTerm {
    /// Argument `i` of the event in the given slot.
    Arg(Slot, usize),
    /// Return value of the event in the given slot.
    Ret(Slot),
    /// A constant value.
    Const(Value),
}

/// An equality or disequality literal over slot terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lit {
    /// `true` for equality, `false` for disequality.
    pub positive: bool,
    /// Left-hand term.
    pub lhs: SlotTerm,
    /// Right-hand term.
    pub rhs: SlotTerm,
}

/// Decides whether a conjunction of literals is satisfiable.
///
/// Variables (argument/return positions) are unconstrained; distinct
/// constants are distinct values. This is sound and complete for the
/// equality fragment the rewrite specifications use.
pub fn consistent(lits: &[Lit]) -> bool {
    let mut ids: HashMap<SlotTerm, usize> = HashMap::new();
    let mut parent: Vec<usize> = Vec::new();
    let mut constant: Vec<Option<Value>> = Vec::new();

    fn find(parent: &mut Vec<usize>, mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    let mut id_of = |t: &SlotTerm, parent: &mut Vec<usize>, constant: &mut Vec<Option<Value>>| {
        if let Some(&i) = ids.get(t) {
            return i;
        }
        let i = parent.len();
        parent.push(i);
        constant.push(match t {
            SlotTerm::Const(v) => Some(v.clone()),
            _ => None,
        });
        ids.insert(t.clone(), i);
        i
    };

    // First pass: merge equalities.
    let mut disequalities = Vec::new();
    for lit in lits {
        let a = id_of(&lit.lhs, &mut parent, &mut constant);
        let b = id_of(&lit.rhs, &mut parent, &mut constant);
        if lit.positive {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra == rb {
                continue;
            }
            // Merge, keeping constant information; clash of distinct
            // constants refutes.
            match (&constant[ra], &constant[rb]) {
                (Some(x), Some(y)) if x != y => return false,
                (Some(_), _) => parent[rb] = ra,
                (_, Some(_)) => parent[ra] = rb,
                _ => parent[rb] = ra,
            }
        } else {
            disequalities.push((a, b));
        }
    }
    // Second pass: disequalities must not connect merged classes.
    for (a, b) in disequalities {
        if find(&mut parent, a) == find(&mut parent, b) {
            return false;
        }
    }
    true
}

/// Instantiates a [`SpecFormula`] (optionally negated) over two slots and
/// returns its DNF as conjunctions of slot literals.
pub fn instantiate_dnf(
    formula: &SpecFormula,
    negated: bool,
    src: Slot,
    tgt: Slot,
) -> Vec<Vec<Lit>> {
    let f = if negated { formula.clone().negate() } else { formula.clone() };
    f.to_dnf()
        .into_iter()
        .map(|conj| {
            conj.into_iter()
                .map(|(positive, lhs, rhs)| Lit {
                    positive,
                    lhs: slotify(&lhs, src, tgt),
                    rhs: slotify(&rhs, src, tgt),
                })
                .collect()
        })
        .collect()
}

fn slotify(t: &ArgTerm, src: Slot, tgt: Slot) -> SlotTerm {
    use crate::spec::Side;
    match t {
        ArgTerm::Arg(Side::Src, i) => SlotTerm::Arg(src, *i),
        ArgTerm::Arg(Side::Tgt, i) => SlotTerm::Arg(tgt, *i),
        ArgTerm::Ret(Side::Src) => SlotTerm::Ret(src),
        ArgTerm::Ret(Side::Tgt) => SlotTerm::Ret(tgt),
        ArgTerm::Const(v) => SlotTerm::Const(v.clone()),
    }
}

/// Satisfiability of a conjunction of instantiated formulas: each entry is
/// `(formula, negated, src_slot, tgt_slot)`.
///
/// Expands to DNF and checks each combination of disjuncts with
/// [`consistent`].
pub fn formulas_consistent(parts: &[(&SpecFormula, bool, Slot, Slot)]) -> bool {
    // Cross product of per-part DNFs, checked incrementally.
    fn rec(
        parts: &[(&SpecFormula, bool, Slot, Slot)],
        acc: &mut Vec<Lit>,
    ) -> bool {
        let Some(((f, neg, s, t), rest)) = parts.split_first() else {
            return consistent(acc);
        };
        for conj in instantiate_dnf(f, *neg, *s, *t) {
            let mark = acc.len();
            acc.extend(conj);
            if rec(rest, acc) {
                return true;
            }
            acc.truncate(mark);
        }
        false
    }
    rec(parts, &mut Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eq(a: SlotTerm, b: SlotTerm) -> Lit {
        Lit { positive: true, lhs: a, rhs: b }
    }
    fn ne(a: SlotTerm, b: SlotTerm) -> Lit {
        Lit { positive: false, lhs: a, rhs: b }
    }

    #[test]
    fn trivially_satisfiable() {
        assert!(consistent(&[]));
        assert!(consistent(&[eq(SlotTerm::Arg(0, 0), SlotTerm::Arg(1, 0))]));
    }

    #[test]
    fn contradiction_via_chain() {
        let a = SlotTerm::Arg(0, 0);
        let b = SlotTerm::Arg(1, 0);
        let c = SlotTerm::Arg(2, 0);
        assert!(!consistent(&[eq(a.clone(), b.clone()), eq(b.clone(), c.clone()), ne(a, c)]));
    }

    #[test]
    fn distinct_constants_refute() {
        let a = SlotTerm::Arg(0, 0);
        assert!(!consistent(&[
            eq(a.clone(), SlotTerm::Const(Value::int(1))),
            eq(a, SlotTerm::Const(Value::int(2))),
        ]));
    }

    #[test]
    fn equal_constants_merge() {
        let a = SlotTerm::Arg(0, 0);
        assert!(consistent(&[
            eq(a.clone(), SlotTerm::Const(Value::int(1))),
            eq(a, SlotTerm::Const(Value::int(1))),
        ]));
    }

    #[test]
    fn formula_combination() {
        // argsrc0 = argtgt0 (slots 0,1) together with its negation is unsat.
        let f = SpecFormula::args_eq(0, 0);
        assert!(!formulas_consistent(&[(&f, false, 0, 1), (&f, true, 0, 1)]));
        // But over different slot pairs it is satisfiable.
        assert!(formulas_consistent(&[(&f, false, 0, 1), (&f, true, 0, 2)]));
    }

    #[test]
    fn disjunction_explored() {
        // (a=b ∨ a≠b) ∧ a=b — satisfiable via first disjunct.
        let f = SpecFormula::or([SpecFormula::args_eq(0, 0), SpecFormula::args_ne(0, 0)]);
        let g = SpecFormula::args_eq(0, 0);
        assert!(formulas_consistent(&[(&f, false, 0, 1), (&g, false, 0, 1)]));
    }
}
