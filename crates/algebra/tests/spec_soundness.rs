//! Property tests: the symbolic rewrite specification is *sound* with
//! respect to the operational sequential semantics.
//!
//! For randomly drawn update pairs over a shared small value domain:
//!
//! * if the specification claims plain commutativity, replaying the two
//!   orders from a random initial state and probing with every query must
//!   agree;
//! * if the specification claims absorption `e ▷ f`, replaying `e f` and
//!   `f` alone must agree on all probes — and also `e β f` vs `β f` for a
//!   random interposer sequence `β` when the *far* version holds.

use c4_algebra::{Alphabet, FarSpec, OpSig, RewriteSpec};
use c4_store::semantics::StoreState;
use c4_store::{op::OpKind, Operation, Value};
use proptest::prelude::*;

fn small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0..3i64).prop_map(Value::int),
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(Value::str),
    ]
}

fn update_op() -> impl Strategy<Value = Operation> {
    prop_oneof![
        (small_value(), small_value()).prop_map(|(k, v)| Operation::map_put("M", k, v)),
        small_value().prop_map(|k| Operation::map_remove("M", k)),
        (small_value(), small_value()).prop_map(|(s, d)| Operation::map_copy("M", s, d)),
        small_value().prop_map(|v| Operation::reg_put("R", v)),
        (0..3i64).prop_map(|n| Operation::ctr_inc("C", n)),
        small_value().prop_map(|e| Operation::set_add("S", e)),
        small_value().prop_map(|e| Operation::set_remove("S", e)),
        small_value().prop_map(|r| Operation::tbl_add_row("T", r)),
        small_value().prop_map(|r| Operation::tbl_delete_row("T", r)),
        (small_value(), small_value()).prop_map(|(r, v)| Operation::fld_set("T", "f", r, v)),
        (small_value(), small_value()).prop_map(|(r, e)| Operation::fld_add("T", "g", r, e)),
        (small_value(), small_value()).prop_map(|(r, e)| Operation::fld_remove("T", "g", r, e)),
        small_value().prop_map(|e| Operation::log_append("L", e)),
    ]
}

/// Queries that observe every aspect of the state the updates can touch.
fn probes() -> Vec<Operation> {
    let mut ps = vec![Operation::reg_get("R", Value::Unit), Operation::ctr_get("C", 0)];
    for v in [Value::int(0), Value::int(1), Value::int(2), Value::str("a"), Value::str("b"), Value::str("c")] {
        ps.push(Operation::map_get("M", v.clone(), Value::Unit));
        ps.push(Operation::map_contains("M", v.clone(), false));
        ps.push(Operation::set_contains("S", v.clone(), false));
        ps.push(Operation::tbl_contains("T", v.clone(), false));
        ps.push(Operation::fld_get("T", "f", v.clone(), Value::Unit));
        for e in [Value::int(0), Value::str("a")] {
            ps.push(Operation::fld_contains("T", "g", v.clone(), e, false));
        }
        ps.push(Operation::fld_contains("T", "g", v.clone(), v.clone(), false));
    }
    ps.push(Operation::map_size("M".into()));
    ps.push(Operation::set_size("S", 0));
    ps.push(Operation::log_last("L", Value::Unit));
    ps.push(Operation::log_count("L", 0));
    for v in [Value::int(0), Value::str("a")] {
        ps.push(Operation::log_has("L", v, false));
    }
    ps
}

trait MapSize {
    fn map_size(object: c4_store::op::ObjectName) -> Operation;
}
impl MapSize for Operation {
    fn map_size(object: c4_store::op::ObjectName) -> Operation {
        Operation::new(object, OpKind::MapSize, vec![], Some(Value::int(0)))
    }
}

fn probe_results(prefix: &[Operation], ops: &[&Operation]) -> Vec<Value> {
    let mut st = StoreState::new();
    for op in prefix {
        st.apply(op);
    }
    for op in ops {
        st.apply(op);
    }
    probes().iter().map(|p| st.eval(p)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Spec-claimed commutativity implies operational commutativity from
    /// any reachable state.
    #[test]
    fn commute_spec_is_sound(
        prefix in prop::collection::vec(update_op(), 0..5),
        a in update_op(),
        b in update_op(),
    ) {
        let spec = RewriteSpec::new();
        if spec.commute_concrete(&a, &b) {
            prop_assert_eq!(
                probe_results(&prefix, &[&a, &b]),
                probe_results(&prefix, &[&b, &a]),
                "spec claims {} and {} commute", a, b
            );
        }
    }

    /// Spec-claimed absorption `a ▷ b` implies `a b ≡ b` from any state.
    #[test]
    fn absorption_spec_is_sound(
        prefix in prop::collection::vec(update_op(), 0..5),
        a in update_op(),
        b in update_op(),
    ) {
        let spec = RewriteSpec::new();
        if spec.absorbs_concrete(&a, &b) {
            prop_assert_eq!(
                probe_results(&prefix, &[&a, &b]),
                probe_results(&prefix, &[&b]),
                "spec claims {} ▷ {}", a, b
            );
        }
    }

    /// Far absorption tolerates arbitrary interposers from the alphabet:
    /// `a β b ≡ β b`.
    #[test]
    fn far_absorption_tolerates_interposers(
        prefix in prop::collection::vec(update_op(), 0..3),
        a in update_op(),
        beta in prop::collection::vec(update_op(), 0..4),
        b in update_op(),
    ) {
        let all: Vec<OpSig> = prefix.iter().chain([&a, &b]).chain(beta.iter()).map(OpSig::of).collect();
        // Compute far relations over the *full* store alphabet so that any
        // interposer is accounted for.
        let mut alphabet: Vec<OpSig> = all;
        for op in full_alphabet() {
            alphabet.push(op);
        }
        let far = FarSpec::compute(RewriteSpec::new(), &Alphabet::new(alphabet));
        if far.far_absorbs_concrete(&a, &b) {
            let mut left: Vec<&Operation> = vec![&a];
            left.extend(beta.iter());
            left.push(&b);
            let mut right: Vec<&Operation> = beta.iter().collect();
            right.push(&b);
            prop_assert_eq!(
                probe_results(&prefix, &left),
                probe_results(&prefix, &right),
                "far spec claims {} ▷ {}", a, b
            );
        }
    }

    /// Far commutativity of an update and a query tolerates interposers:
    /// the query result after `u β` equals the result after `β` alone.
    #[test]
    fn far_commutativity_tolerates_interposers(
        prefix in prop::collection::vec(update_op(), 0..3),
        u in update_op(),
        beta in prop::collection::vec(update_op(), 0..4),
    ) {
        let mut alphabet: Vec<OpSig> =
            prefix.iter().chain([&u]).chain(beta.iter()).map(OpSig::of).collect();
        alphabet.extend(full_alphabet());
        let far = FarSpec::compute(RewriteSpec::new(), &Alphabet::new(alphabet));
        for q in probes() {
            let qsig = OpSig::of(&q);
            if far.far_commutes(&OpSig::of(&u), &qsig).eval(&u, &q) {
                let mut with_u: Vec<&Operation> = vec![&u];
                with_u.extend(beta.iter());
                let without: Vec<&Operation> = beta.iter().collect();
                let mut st1 = StoreState::new();
                for op in prefix.iter().chain(with_u.iter().copied()) {
                    st1.apply(op);
                }
                let mut st2 = StoreState::new();
                for op in prefix.iter().chain(without.iter().copied()) {
                    st2.apply(op);
                }
                prop_assert_eq!(
                    st1.eval(&q),
                    st2.eval(&q),
                    "far spec claims {} ↷º {}", u.clone(), q.clone()
                );
            }
        }
    }
}

fn full_alphabet() -> Vec<OpSig> {
    vec![
        OpSig::new("M", OpKind::MapPut),
        OpSig::new("M", OpKind::MapRemove),
        OpSig::new("M", OpKind::MapCopy),
        OpSig::new("M", OpKind::MapGet),
        OpSig::new("M", OpKind::MapContains),
        OpSig::new("M", OpKind::MapSize),
        OpSig::new("R", OpKind::RegPut),
        OpSig::new("R", OpKind::RegGet),
        OpSig::new("C", OpKind::CtrInc),
        OpSig::new("C", OpKind::CtrGet),
        OpSig::new("S", OpKind::SetAdd),
        OpSig::new("S", OpKind::SetRemove),
        OpSig::new("S", OpKind::SetContains),
        OpSig::new("S", OpKind::SetSize),
        OpSig::new("T", OpKind::TblAddRow),
        OpSig::new("T", OpKind::TblDeleteRow),
        OpSig::new("T", OpKind::TblContains),
        OpSig::new("T", OpKind::FldSet("f".into())),
        OpSig::new("T", OpKind::FldGet("f".into())),
        OpSig::new("T", OpKind::FldAdd("g".into())),
        OpSig::new("T", OpKind::FldRemove("g".into())),
        OpSig::new("T", OpKind::FldContains("g".into())),
        OpSig::new("T", OpKind::FldSize("g".into())),
        OpSig::new("L", OpKind::LogAppend),
        OpSig::new("L", OpKind::LogLast),
        OpSig::new("L", OpKind::LogCount),
        OpSig::new("L", OpKind::LogHas),
    ]
}
