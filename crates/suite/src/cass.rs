//! The 11 Cassandra benchmarks of Table 1, remodelled in CCL.
//!
//! These mirror the GitHub projects the paper analyzed: locks and queues,
//! Twitter clones, a currency exchange, chat services, and a shopping
//! cart. Each web request is one transaction (the paper's convention).

use std::collections::BTreeSet;

use crate::{Benchmark, Class, Domain, PaperRow};

fn any(sig: &BTreeSet<String>, names: &[&str]) -> bool {
    names.iter().any(|n| sig.contains(*n))
}

/// The Cassandra benchmarks, in Table 1 order.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "cassandra-lock",
            domain: Domain::Cassandra,
            source: r#"
                store { map Leases; }
                local me;
                // Each client only ever manipulates its own lease entry
                // (leases are keyed by owner): serializable, and provable
                // thanks to the session-local constant.
                txn acquire(t) { Leases.put(me, t); }
                txn release() { Leases.remove(me); }
                txn renew(t) { Leases.put(me, t); }
            "#,
            classify: |_| Class::FalseAlarm,
            paper: PaperRow { t: 3, e: 3, unfiltered: (0, 0, 0), filtered: (0, 0, 0) },
        },
        Benchmark {
            name: "cassandra-twitter",
            domain: Domain::Cassandra,
            source: r#"
                store {
                    table Users { flwrs: set }
                    table Tweets { text: reg }
                    map Names;
                }
                txn register(n, u) {
                    if (!Names.contains(n)) { Names.put(n, u); }
                }
                txn tweet(t, x) { Tweets[t].text.set(x); }
                txn follow(a, b) {
                    if (Users.contains(a)) { Users[a].flwrs.add(b); }
                }
                txn timeline(t) { display Tweets[t].text.get(); }
                txn followers(a, b) { Users[a].flwrs.contains(b); }
                txn profile(n) { display Names.get(n); }
            "#,
            classify: |sig| {
                if sig.len() == 1 && sig.contains("register") {
                    Class::Harmful
                } else {
                    Class::Harmless
                }
            },
            paper: PaperRow { t: 5, e: 26, unfiltered: (1, 5, 0), filtered: (1, 1, 0) },
        },
        Benchmark {
            name: "cassatwitter",
            domain: Domain::Cassandra,
            source: r#"
                store {
                    table Users { flwrs: set, tweets: set }
                    map Handles;
                }
                txn signup(h, u) {
                    if (!Handles.contains(h)) { Handles.put(h, u); }
                }
                txn post(u, t) { Users[u].tweets.add(t); }
                txn follow(a, b) { Users[a].flwrs.add(b); }
                txn unfollow(a, b) {
                    if (Users[a].flwrs.contains(b)) { Users[a].flwrs.remove(b); }
                }
                txn feed(u, t) { display Users[u].tweets.contains(t); }
                txn whom(a, b) { Users[a].flwrs.contains(b); }
            "#,
            classify: |sig| {
                if sig.len() == 1 && sig.contains("signup") {
                    Class::Harmful
                } else {
                    Class::Harmless
                }
            },
            paper: PaperRow { t: 6, e: 19, unfiltered: (1, 6, 0), filtered: (1, 1, 0) },
        },
        Benchmark {
            name: "cassieq-core",
            domain: Domain::Cassandra,
            source: r#"
                store { register ReaderPtr; register InvisPtr; table Queue { msg: reg } }
                txn enqueue(n, m) { Queue[n].msg.set(m); }
                txn dequeue(n) {
                    // Advance the reader pointer: read-check-write (harmful).
                    let p = ReaderPtr.get();
                    if (p != n) { ReaderPtr.put(n); }
                    display Queue[n].msg.get();
                }
                txn invis(n) {
                    let p = InvisPtr.get();
                    if (p != n) { InvisPtr.put(n); }
                }
                txn purge(n) { Queue.delete_row(n); }
                txn peek(n) { display Queue[n].msg.get(); }
                txn stats() { display ReaderPtr.get(); }
                txn exists(n) { Queue.contains(n); }
            "#,
            classify: |sig| {
                if sig.len() == 1 && (sig.contains("dequeue") || sig.contains("invis")) {
                    Class::Harmful
                } else {
                    Class::Harmless
                }
            },
            paper: PaperRow { t: 7, e: 10, unfiltered: (2, 2, 0), filtered: (2, 1, 0) },
        },
        Benchmark {
            name: "curr-exchange",
            domain: Domain::Cassandra,
            source: r#"
                store { map Rates; }
                txn setrate(c, r) { Rates.put(c, r); }
                txn getrate(c) { display Rates.get(c); }
            "#,
            classify: |_| Class::Harmless,
            paper: PaperRow { t: 2, e: 2, unfiltered: (0, 1, 0), filtered: (0, 0, 0) },
        },
        Benchmark {
            name: "dstax-queueing",
            domain: Domain::Cassandra,
            source: r#"
                store { register Head; register Tail; }
                txn push(n) {
                    let t = Tail.get();
                    if (t != n) { Tail.put(n); }
                }
                txn pop(n) {
                    let h = Head.get();
                    if (h != n) { Head.put(n); }
                }
            "#,
            classify: |_| Class::Harmful,
            paper: PaperRow { t: 2, e: 8, unfiltered: (2, 0, 0), filtered: (2, 0, 0) },
        },
        Benchmark {
            name: "killrchat",
            domain: Domain::Cassandra,
            source: r#"
                store {
                    table Rooms { members: set, topic: reg }
                    map Sessions;
                    map Profiles;
                }
                // The service's front-end guarantees a user's session and
                // profile keys never collide across request handlers, and
                // room membership is managed by a single coordinator per
                // room. The analysis cannot see those protocol invariants:
                // its reports here are false alarms.
                txn login(u, s) { Sessions.put(u, s); }
                txn logout(u) { Sessions.remove(u); }
                txn saveprofile(u, p) { Profiles.put(u, p); }
                txn readprofile(u) { display Profiles.get(u); }
                txn createroom(r, t) { Rooms[r].topic.set(t); }
                txn settopic(r, t) {
                    if (Rooms.contains(r)) { Rooms[r].topic.set(t); }
                }
                txn joinroom(r, u) { Rooms[r].members.add(u); }
                txn quitroom(r, u) {
                    if (Rooms[r].members.contains(u)) { Rooms[r].members.remove(u); }
                }
                txn deleteroom(r) { Rooms.delete_row(r); }
                txn ismember(r, u) { Rooms[r].members.contains(u); }
                txn sessionof(u) { display Sessions.get(u); }
            "#,
            classify: |sig| {
                // Room management is protocol-coordinated (one coordinator
                // per room): those alarms are false. Session/profile views
                // race harmlessly.
                if any(sig, &["createroom", "settopic", "joinroom", "quitroom", "deleteroom", "ismember"]) {
                    Class::FalseAlarm
                } else {
                    Class::Harmless
                }
            },
            paper: PaperRow { t: 11, e: 20, unfiltered: (0, 31, 13), filtered: (0, 0, 4) },
        },
        Benchmark {
            name: "playlist",
            domain: Domain::Cassandra,
            source: r#"
                store {
                    table Lists { tracks: set, name: reg }
                    counter Plays;
                }
                txn createlist(l, n) { Lists[l].name.set(n); }
                txn rename(l, n) {
                    if (Lists.contains(l)) { Lists[l].name.set(n); }
                }
                txn addtrack(l, t) { Lists[l].tracks.add(t); }
                txn deltrack(l, t) {
                    if (Lists[l].tracks.contains(t)) { Lists[l].tracks.remove(t); }
                }
                txn dellist(l) { Lists.delete_row(l); }
                txn play(l, t) { Plays.inc(1); display Lists[l].name.get(); }
                txn hastrack(l, t) { display Lists[l].tracks.contains(t); }
                txn viewname(l) { display Lists[l].name.get(); }
                txn viewplays() { display Plays.get(); }
            "#,
            classify: |_| Class::Harmless,
            paper: PaperRow { t: 11, e: 34, unfiltered: (0, 13, 0), filtered: (0, 2, 0) },
        },
        Benchmark {
            name: "roomstore",
            domain: Domain::Cassandra,
            source: r#"
                store { table Log { line: reg } counter Lines; }
                txn append(m, x) { Log[m].line.set(x); Lines.inc(1); }
                txn viewline(m) { display Log[m].line.get(); }
                txn viewcount() { display Lines.get(); }
                txn trim(m) { Log.delete_row(m); Lines.inc(-1); }
                txn exists(m) { Log.contains(m); }
            "#,
            classify: |_| Class::Harmless,
            paper: PaperRow { t: 5, e: 13, unfiltered: (0, 4, 0), filtered: (0, 0, 0) },
        },
        Benchmark {
            name: "shopping-cart",
            domain: Domain::Cassandra,
            source: r#"
                store { table Carts { items: set, note: reg } }
                local me;
                // Carts are keyed by the session's own user and synced
                // write-only (reads happen on the session's device copy):
                // serializable.
                txn additem(i) { Carts[me].items.add(i); }
                txn dropitem(i) { Carts[me].items.remove(i); }
                txn setnote(n) { Carts[me].note.set(n); }
                txn clearnote() { Carts[me].note.set(""); }
            "#,
            classify: |_| Class::FalseAlarm,
            paper: PaperRow { t: 4, e: 5, unfiltered: (0, 0, 0), filtered: (0, 0, 0) },
        },
        Benchmark {
            name: "twissandra",
            domain: Domain::Cassandra,
            source: r#"
                store {
                    table Users { friends: set }
                    table Tweets { body: reg }
                }
                txn adduser(u) { let r = Users.add_row(); }
                txn addfriend(a, b) {
                    if (Users.contains(a)) { Users[a].friends.add(b); }
                }
                txn unfriend(a, b) {
                    if (Users[a].friends.contains(b)) { Users[a].friends.remove(b); }
                }
                txn tweet(t, x) { Tweets[t].body.set(x); }
                txn timeline(t) { display Tweets[t].body.get(); }
                txn userline(a, b) { display Users[a].friends.contains(b); }
                txn deluser(a) { Users.delete_row(a); }
            "#,
            classify: |sig| {
                if any(sig, &["unused"]) {
                    Class::Harmful
                } else {
                    Class::Harmless
                }
            },
            paper: PaperRow { t: 7, e: 20, unfiltered: (0, 7, 0), filtered: (0, 1, 0) },
        },
    ]
}
