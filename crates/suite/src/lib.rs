//! The evaluation suite of the paper (Section 9), remodelled in CCL.
//!
//! Table 1 evaluates 17 TouchDevelop applications and 11 Cassandra-backed
//! open-source projects. The original sources are unavailable
//! (TouchDevelop is discontinued; the GitHub projects are Java), so each
//! benchmark is re-modelled as a CCL program exhibiting the transaction
//! and data-access patterns the paper describes for it, with a
//! ground-truth classification of every detectable violation into
//! **harmful** (a real bug), **harmless** (a benign serializability
//! violation) or **false alarm** (the program is serializable but the
//! analysis cannot prove it).
//!
//! [`analyze`] runs the full C4 pipeline on a benchmark — front end,
//! unfiltered analysis, and the Section 9.1 filtered analysis (display
//! code dropped, atomic sets analyzed independently) — and classifies the
//! found violations, producing one Table 1 row.

mod cass;
mod td;

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use c4::{
    filter, AnalysisFeatures, AnalysisResult, AnalysisStats, CacheCounters, CacheKey, Checker,
    VerdictCache,
};

/// Which evaluation domain a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Cloud-backed mobile applications (TouchDevelop).
    TouchDevelop,
    /// Distributed-database clients (Cassandra).
    Cassandra,
}

/// Ground-truth classification of a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Clearly harmful behavior (an actual bug).
    Harmful,
    /// A real but harmless serializability violation.
    Harmless,
    /// A false alarm: the program is serializable.
    FalseAlarm,
}

/// One benchmark of the suite.
pub struct Benchmark {
    /// Benchmark name (matches the Table 1 row).
    pub name: &'static str,
    /// Domain.
    pub domain: Domain,
    /// CCL source.
    pub source: &'static str,
    /// Ground-truth classifier: violation signature (set of transaction
    /// names) → class.
    pub classify: fn(&BTreeSet<String>) -> Class,
    /// The paper's Table 1 numbers for comparison:
    /// `(T, E, (E,H,F) unfiltered, (E,H,F) filtered)`.
    pub paper: PaperRow,
}

/// The published Table 1 row of a benchmark.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Abstract transactions.
    pub t: usize,
    /// Abstract events.
    pub e: usize,
    /// Unfiltered (errors, harmless, false alarms).
    pub unfiltered: (usize, usize, usize),
    /// Filtered (errors, harmless, false alarms).
    pub filtered: (usize, usize, usize),
}

/// All benchmarks, TouchDevelop first (Table 1 order).
pub fn benchmarks() -> Vec<Benchmark> {
    let mut v = td::benchmarks();
    v.extend(cass::benchmarks());
    v
}

/// Looks a benchmark up by name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    benchmarks().into_iter().find(|b| b.name == name)
}

/// Violation counts by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Harmful violations (the paper's `E` column).
    pub errors: usize,
    /// Harmless violations (`H`).
    pub harmless: usize,
    /// False alarms (`F`).
    pub false_alarms: usize,
}

impl Counts {
    /// Total violations.
    pub fn total(&self) -> usize {
        self.errors + self.harmless + self.false_alarms
    }
}

/// The outcome of analyzing one benchmark (one Table 1 row).
#[derive(Debug, Clone)]
pub struct BenchOutcome {
    /// Benchmark name.
    pub name: &'static str,
    /// Abstract transactions (`T`).
    pub t: usize,
    /// Abstract events (`E`).
    pub e: usize,
    /// Front-end time (parse + abstract interpretation).
    pub fe_time: Duration,
    /// Back-end time (both analysis runs).
    pub be_time: Duration,
    /// Unfiltered classified violations.
    pub unfiltered: Vec<(BTreeSet<String>, Class)>,
    /// Filtered classified violations.
    pub filtered: Vec<(BTreeSet<String>, Class)>,
    /// Whether both runs generalized to unboundedly many sessions.
    pub generalized: bool,
    /// Largest `k` used.
    pub max_k: usize,
    /// Merged analysis statistics.
    pub stats: AnalysisStats,
    /// Verdict-cache activity attributable to this benchmark (all zero
    /// when analyzed without a cache).
    pub cache: CacheCounters,
}

impl BenchOutcome {
    /// Counts for the unfiltered run.
    pub fn unfiltered_counts(&self) -> Counts {
        count(&self.unfiltered)
    }

    /// Counts for the filtered run.
    pub fn filtered_counts(&self) -> Counts {
        count(&self.filtered)
    }
}

fn count(vs: &[(BTreeSet<String>, Class)]) -> Counts {
    let mut c = Counts::default();
    for (_, class) in vs {
        match class {
            Class::Harmful => c.errors += 1,
            Class::Harmless => c.harmless += 1,
            Class::FalseAlarm => c.false_alarms += 1,
        }
    }
    c
}

/// Runs the full pipeline on a benchmark.
///
/// # Panics
///
/// Panics if the benchmark source fails to parse or interpret (suite
/// sources are fixed and tested).
pub fn analyze(b: &Benchmark, features: &AnalysisFeatures) -> BenchOutcome {
    analyze_with_cache(b, features, None)
}

/// [`analyze`] with an optional content-addressed verdict cache.
///
/// Each checker run of the pipeline — the unfiltered analysis and every
/// filtered atomic-set view — is cached independently, keyed by the
/// canonical CCL source, a per-run tag (`"unfiltered"` /
/// `"filtered:<view>"`) and the verdict-relevant features. Cached
/// verdicts are byte-stable, so a warm [`BenchOutcome`] carries exactly
/// the same violations, classifications, `generalized` flag, `max_k`
/// and replay counters as a cold one; only timings (and the
/// scheduling-dependent stats, which are zero on hits) differ. Partial
/// (deadline-hit) results are never stored. The filtered views reuse
/// the transaction indices of the full history, so cached view verdicts
/// re-classify correctly.
///
/// # Panics
///
/// Panics if the benchmark source fails to parse or interpret (suite
/// sources are fixed and tested).
pub fn analyze_with_cache(
    b: &Benchmark,
    features: &AnalysisFeatures,
    cache: Option<&VerdictCache>,
) -> BenchOutcome {
    let fe_start = Instant::now();
    let fe_span = c4_obs::span("front_end");
    let program = c4_lang::parse(b.source).expect("suite sources parse");
    let history = c4_lang::abstract_history(&program).expect("suite sources interpret");
    let canon = cache.map(|_| c4_lang::canonical(&program));
    drop(fe_span);
    let fe_time = fe_start.elapsed();
    let counters_before = cache.map(|c| c.counters()).unwrap_or_default();

    let run = |history: c4::AbstractHistory, tag: &str| -> AnalysisResult {
        let key = cache
            .map(|_| CacheKey::derive(canon.as_deref().unwrap(), tag, features));
        if let (Some(cache), Some(key)) = (cache, &key) {
            let _lookup = c4_obs::span("cache_lookup");
            if let Some((bytes, _tier)) = cache.lookup(key) {
                return AnalysisResult::decode_report(&bytes)
                    .expect("cache returns only decode-validated entries");
            }
        }
        let res = Checker::new(history, features.clone()).run();
        if let (Some(cache), Some(key)) = (cache, &key) {
            // A deadline-hit verdict is partial; caching it would let a
            // short-budget run shadow a complete one.
            if !res.stats.deadline_hit {
                cache.store(key, &res.encode_report());
            }
        }
        res
    };

    let be_start = Instant::now();
    let mut stats = AnalysisStats::default();
    // Unfiltered run: everything analyzed together.
    let unfiltered_res = run(history.clone(), "unfiltered");
    stats.absorb(&unfiltered_res.stats);
    let name_of = |i: usize| history.txs[i].name.clone();
    let mut unfiltered: Vec<(BTreeSet<String>, Class)> = Vec::new();
    for v in &unfiltered_res.violations {
        let sig: BTreeSet<String> = v.txs.iter().map(|&i| name_of(i)).collect();
        if !unfiltered.iter().any(|(s, _)| *s == sig) {
            let class = (b.classify)(&sig);
            unfiltered.push((sig, class));
        }
    }
    // Filtered run: display code dropped, atomic sets independent.
    let base = filter::drop_display(&history);
    let mut filtered: Vec<(BTreeSet<String>, Class)> = Vec::new();
    let mut generalized = unfiltered_res.generalized;
    let mut max_k = unfiltered_res.max_k;
    for (vi, view) in filter::atomic_set_views(&base).into_iter().enumerate() {
        let res = run(view, &format!("filtered:{vi}"));
        stats.absorb(&res.stats);
        generalized &= res.generalized;
        max_k = max_k.max(res.max_k);
        for v in &res.violations {
            let sig: BTreeSet<String> = v.txs.iter().map(|&i| name_of(i)).collect();
            if !filtered.iter().any(|(s, _)| *s == sig) {
                let class = (b.classify)(&sig);
                filtered.push((sig, class));
            }
        }
    }
    BenchOutcome {
        name: b.name,
        t: history.txs.len(),
        e: history.event_count(),
        fe_time,
        be_time: be_start.elapsed(),
        unfiltered,
        filtered,
        generalized,
        max_k,
        stats,
        cache: cache.map(|c| c.counters().since(&counters_before)).unwrap_or_default(),
    }
}

/// One benchmark outcome as a single machine-readable JSON line — the
/// `table1 --json` record. The workspace is offline (no serde), and
/// the shapes here are flat enough that assembling the object by hand
/// stays readable; benchmark names are ASCII identifiers, so no string
/// escaping is needed.
///
/// The record carries the **full** `AnalysisStats`, split by
/// determinism contract:
///
/// * `"stats"` — the replay counters plus run shape: identical across
///   worker counts and feature toggles (the symmetry/incremental
///   differential smokes compare these byte-for-byte);
/// * `"sched"` — scheduling- and feature-dependent counters
///   (speculative/prepruned/assumption solves, symmetry class
///   accounting, residency, per-worker query distribution): allowed
///   to differ run-to-run, stripped by [`strip_volatile`];
/// * `"timings_ms"` — wall-clock per stage, never deterministic.
pub fn json_line(domain: Domain, out: &BenchOutcome) -> String {
    let counts = |c: Counts| {
        format!(
            r#"{{"errors":{},"harmless":{},"false_alarms":{}}}"#,
            c.errors, c.harmless, c.false_alarms
        )
    };
    let s = &out.stats;
    let t = &s.timings;
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let per_worker = s
        .per_worker_queries
        .iter()
        .map(|q| q.to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!(
        concat!(
            r#"{{"name":"{name}","domain":"{domain}","t":{t},"e":{e},"#,
            r#""fe_ms":{fe_ms:.3},"be_ms":{be_ms:.3},"#,
            r#""unfiltered":{unf},"filtered":{fil},"#,
            r#""generalized":{gen},"max_k":{max_k},"deadline_hit":{dl},"#,
            r#""stats":{{"unfoldings":{unfold},"suspicious_unfoldings":{susp},"#,
            r#""smt_queries":{queries},"smt_sat":{sat},"smt_refuted":{refuted},"#,
            r#""generalization_queries":{genq},"subsumed_candidates":{subsumed},"#,
            r#""validation_failures":{vfail},"workers":{workers}}},"#,
            r#""sched":{{"speculative_smt_queries":{spec},"preprune_skips":{pps},"#,
            r#""preprune_fallbacks":{ppf},"assumption_solves":{asol},"#,
            r#""sat_resolves":{sres},"learnt_clauses":{learnt},"#,
            r#""classes":{classes},"class_members_skipped":{skipped},"#,
            r#""peak_unfoldings_resident":{peak},"per_worker_queries":[{pwq}]}},"#,
            r#""timings_ms":{{"unfold":{t_unfold:.3},"ssg_filter":{t_ssg:.3},"#,
            r#""smt":{t_smt:.3},"encoder_build":{t_build:.3},"#,
            r#""query_solve":{t_solve:.3},"validate":{t_val:.3},"merge":{t_merge:.3}}},"#,
            r#""cache":{{"mem_hits":{c_mem},"disk_hits":{c_disk},"misses":{c_miss},"#,
            r#""stores":{c_stores},"evictions":{c_evict},"stale_drops":{c_stale}}}}}"#,
        ),
        name = out.name,
        domain = match domain {
            Domain::TouchDevelop => "touchdevelop",
            Domain::Cassandra => "cassandra",
        },
        t = out.t,
        e = out.e,
        fe_ms = ms(out.fe_time),
        be_ms = ms(out.be_time),
        unf = counts(out.unfiltered_counts()),
        fil = counts(out.filtered_counts()),
        gen = out.generalized,
        max_k = out.max_k,
        dl = s.deadline_hit,
        unfold = s.unfoldings,
        susp = s.suspicious_unfoldings,
        queries = s.smt_queries,
        sat = s.smt_sat,
        refuted = s.smt_refuted,
        genq = s.generalization_queries,
        subsumed = s.subsumed_candidates,
        vfail = s.validation_failures,
        workers = s.workers,
        spec = s.speculative_smt_queries,
        pps = s.preprune_skips,
        ppf = s.preprune_fallbacks,
        asol = s.assumption_solves,
        sres = s.sat_resolves,
        learnt = s.learnt_clauses,
        classes = s.classes,
        skipped = s.class_members_skipped,
        peak = s.peak_unfoldings_resident,
        pwq = per_worker,
        t_unfold = ms(t.unfold),
        t_ssg = ms(t.ssg_filter),
        t_smt = ms(t.smt),
        t_build = ms(t.encoder_build),
        t_solve = ms(t.query_solve),
        t_val = ms(t.validate),
        t_merge = ms(t.merge),
        c_mem = out.cache.mem_hits,
        c_disk = out.cache.disk_hits,
        c_miss = out.cache.misses,
        c_stores = out.cache.stores,
        c_evict = out.cache.evictions,
        c_stale = out.cache.stale_drops,
    )
}

/// Strips the run-to-run volatile parts of a [`json_line`] record —
/// the `fe_ms`/`be_ms` wall clocks, the `"sched"` block, and the
/// `"timings_ms"` block — leaving the deterministic remainder that
/// differential tests and the ci.sh smokes compare byte-for-byte.
/// (The ci.sh `strip_timings` sed is the shell twin of this function;
/// keep them in sync.)
pub fn strip_volatile(line: &str) -> String {
    let mut s = line.to_string();
    if let Some(i) = s.find("\"fe_ms\":") {
        if let Some(j) = s[i..].find("\"unfiltered\"") {
            s.replace_range(i..i + j, "");
        }
    }
    // Both blocks are flat objects except for the per-worker array,
    // which contains no `}`, so the first close brace ends the block.
    for key in ["\"sched\":{", "\"timings_ms\":{"] {
        if let Some(i) = s.find(key) {
            let start = i + key.len();
            if let Some(j) = s[start..].find('}') {
                let mut end = start + j + 1;
                if s.as_bytes().get(end) == Some(&b',') {
                    end += 1;
                }
                s.replace_range(i..end, "");
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_is_valid_json_and_strip_removes_volatile_blocks() {
        let b = benchmark("Tetris").unwrap();
        let out = analyze(&b, &AnalysisFeatures::default());
        let line = json_line(Domain::TouchDevelop, &out);
        c4_obs::json::validate(&line).expect("json_line must parse as JSON");
        for field in [
            "\"sched\":{",
            "\"per_worker_queries\":[",
            "\"classes\":",
            "\"peak_unfoldings_resident\":",
            "\"encoder_build\":",
            "\"query_solve\":",
        ] {
            assert!(line.contains(field), "json_line missing {field}");
        }
        let stripped = strip_volatile(&line);
        c4_obs::json::validate(&stripped).expect("stripped line must stay valid JSON");
        for gone in ["\"sched\":{", "\"timings_ms\":{", "\"fe_ms\":", "\"be_ms\":"] {
            assert!(!stripped.contains(gone), "strip_volatile left {gone}");
        }
        assert!(stripped.contains("\"stats\":{"), "strip_volatile must keep stats");
        assert!(stripped.contains("\"cache\":{"), "strip_volatile must keep cache");
    }

    #[test]
    fn all_sources_parse_and_interpret() {
        for b in benchmarks() {
            let p = c4_lang::parse(b.source)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let h = c4_lang::abstract_history(&p)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(!h.txs.is_empty(), "{} has no transactions", b.name);
            assert!(h.event_count() > 0, "{} has no events", b.name);
        }
    }

    #[test]
    fn cached_analysis_reproduces_direct_analysis() {
        let features = AnalysisFeatures::default();
        let cache = VerdictCache::in_memory(64);
        for name in ["Tetris", "killrchat"] {
            let b = benchmark(name).unwrap();
            let direct = analyze(&b, &features);
            let cold = analyze_with_cache(&b, &features, Some(&cache));
            let warm = analyze_with_cache(&b, &features, Some(&cache));
            assert_eq!(cold.cache.mem_hits, 0, "{name}: first cached run computes");
            assert!(cold.cache.stores > 0, "{name}: first cached run stores");
            assert_eq!(warm.cache.misses, 0, "{name}: second cached run all-hits");
            assert_eq!(warm.cache.mem_hits, cold.cache.stores, "{name}: hit per stored run");
            for out in [&cold, &warm] {
                assert_eq!(out.unfiltered, direct.unfiltered, "{name}");
                assert_eq!(out.filtered, direct.filtered, "{name}");
                assert_eq!(out.generalized, direct.generalized, "{name}");
                assert_eq!(out.max_k, direct.max_k, "{name}");
                assert_eq!(
                    out.stats.replay_counters(),
                    direct.stats.replay_counters(),
                    "{name}"
                );
            }
        }
    }

    #[test]
    fn registry_matches_table1() {
        let bs = benchmarks();
        assert_eq!(bs.len(), 28);
        assert_eq!(bs.iter().filter(|b| b.domain == Domain::TouchDevelop).count(), 17);
        assert_eq!(bs.iter().filter(|b| b.domain == Domain::Cassandra).count(), 11);
        assert!(benchmark("Tetris").is_some());
        assert!(benchmark("killrchat").is_some());
        assert!(benchmark("nonexistent").is_none());
    }
}
