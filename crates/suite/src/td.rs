//! The 17 TouchDevelop benchmarks of Table 1, remodelled in CCL.
//!
//! Each program reproduces the data-access patterns the paper attributes
//! to the app: cloud-synced user data, display-only views (the
//! display-code heuristic's target), read-check-write races, and
//! fresh-row creation. The ground-truth classifiers encode the manual
//! inspection verdicts.

use std::collections::BTreeSet;

use crate::{Benchmark, Class, Domain, PaperRow};

fn any(sig: &BTreeSet<String>, names: &[&str]) -> bool {
    names.iter().any(|n| sig.contains(*n))
}

/// The TouchDevelop benchmarks, in Table 1 order.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "Cloud List",
            domain: Domain::TouchDevelop,
            source: r#"
                store { table Items { text: reg } counter Count; }
                txn additem(t) {
                    let r = Items.add_row();
                    Items[r].text.set(t);
                    Count.inc(1);
                }
                txn removeitem(r) { Items.delete_row(r); Count.inc(-1); }
                txn viewitem(r) { display Items[r].text.get(); }
                txn viewcount() { display Count.get(); }
            "#,
            classify: |_| Class::Harmless,
            paper: PaperRow { t: 4, e: 7, unfiltered: (0, 3, 0), filtered: (0, 0, 0) },
        },
        Benchmark {
            name: "Super Chat",
            domain: Domain::TouchDevelop,
            source: r#"
                store {
                    table Msgs { text: reg, author: reg }
                    table Rooms { members: set }
                }
                txn postmsg(m, a, t) {
                    Msgs[m].text.set(t);
                    Msgs[m].author.set(a);
                }
                txn editmsg(m, t) {
                    if (Msgs.contains(m)) { Msgs[m].text.set(t); }
                }
                txn deletemsg(m) { Msgs.delete_row(m); }
                txn joinroom(r, u) { Rooms[r].members.add(u); }
                txn leaveroom(r, u) {
                    if (Rooms[r].members.contains(u)) { Rooms[r].members.remove(u); }
                }
                txn viewmsg(m) { display Msgs[m].text.get(); display Msgs[m].author.get(); }
                txn viewauthor(m) { display Msgs[m].author.get(); }
                txn viewroom(r, u) { display Rooms[r].members.contains(u); }
            "#,
            classify: |_| Class::Harmless,
            paper: PaperRow { t: 8, e: 28, unfiltered: (0, 7, 0), filtered: (0, 3, 0) },
        },
        Benchmark {
            name: "Save Passwords",
            domain: Domain::TouchDevelop,
            source: r#"
                store { map Pwds; set Tags; }
                txn save(k, v) { Pwds.put(k, v); }
                txn remove(k) { Pwds.remove(k); }
                txn exists(k) { Pwds.contains(k); }
                txn load(k) { display Pwds.get(k); }
                txn tag(t) { Tags.add(t); }
                txn viewtags(t) { display Tags.contains(t); }
                txn rename(k, v) {
                    if (Pwds.contains(k)) { Pwds.put(k, v); }
                }
                // The audit view only ever reads keys from the archived
                // namespace, which the app never writes concurrently — a
                // false alarm the display-code filter removes.
                txn audit(k) { display Pwds.get(k); display Pwds.contains(k); }
            "#,
            classify: |sig| {
                if any(sig, &["audit"]) {
                    Class::FalseAlarm
                } else {
                    Class::Harmless
                }
            },
            paper: PaperRow { t: 7, e: 13, unfiltered: (0, 11, 2), filtered: (0, 1, 0) },
        },
        Benchmark {
            name: "EC2 Demo Chat",
            domain: Domain::TouchDevelop,
            source: r#"
                store { table Msgs { text: reg, author: reg } }
                txn post(m, t, a) { Msgs[m].text.set(t); Msgs[m].author.set(a); }
                txn view(m) { display Msgs[m].text.get(); display Msgs[m].author.get(); }
            "#,
            classify: |_| Class::Harmless,
            paper: PaperRow { t: 2, e: 4, unfiltered: (0, 1, 0), filtered: (0, 0, 0) },
        },
        Benchmark {
            name: "Contest Voting",
            domain: Domain::TouchDevelop,
            source: r#"
                store { counter Tally; set Voters; }
                txn vote(u) { Voters.add(u); Tally.inc(1); }
                txn results() { display Tally.get(); }
            "#,
            classify: |_| Class::Harmless,
            paper: PaperRow { t: 2, e: 3, unfiltered: (0, 1, 0), filtered: (0, 0, 0) },
        },
        Benchmark {
            name: "Chatter Box",
            domain: Domain::TouchDevelop,
            source: r#"
                store { map Box; map Inbox; }
                // The app keeps user messages and system notes in disjoint
                // key namespaces of the same column family; the analysis
                // cannot see the convention, so sysnote races are false
                // alarms.
                txn sendmsg(k, t) { Box.put(k, t); }
                txn sysnote(k, t) { Box.put(k, t); }
                txn purge(k) { Box.remove(k); }
                txn peeksent(k) { display Box.get(k); }
                txn recvmsg(k, t) { Inbox.put(k, t); }
                txn peekinbox(k) { display Inbox.get(k); }
            "#,
            classify: |sig| {
                if any(sig, &["sysnote"]) {
                    Class::FalseAlarm
                } else {
                    Class::Harmless
                }
            },
            paper: PaperRow { t: 5, e: 19, unfiltered: (0, 5, 4), filtered: (0, 0, 0) },
        },
        Benchmark {
            name: "Tetris",
            domain: Domain::TouchDevelop,
            source: r#"
                store { register Best; register Lines; register Level; }
                txn submitscore(s) {
                    if (Best.get() < s) { Best.put(s); }
                }
                txn savelines(n) {
                    let old = Lines.get();
                    if (old < n) { Lines.put(n); }
                }
                txn savelevel(l) {
                    if (Level.get() != l) { Level.put(l); }
                }
            "#,
            classify: |_| Class::Harmful,
            paper: PaperRow { t: 3, e: 12, unfiltered: (3, 0, 0), filtered: (3, 0, 0) },
        },
        Benchmark {
            name: "NuvolaList 2",
            domain: Domain::TouchDevelop,
            source: r#"
                store { table Todos { text: reg, done: reg } counter Left; }
                txn additem(t) {
                    let r = Todos.add_row();
                    Todos[r].text.set(t);
                    Left.inc(1);
                }
                txn checkitem(r) { Todos[r].done.set(true); Left.inc(-1); }
                txn viewitem(r) { display Todos[r].text.get(); display Todos[r].done.get(); }
                txn viewleft() { display Left.get(); }
                txn cleardone(r) {
                    if (Todos[r].done.get() == true) { Todos.delete_row(r); }
                }
                atomicset { Todos }
                atomicset { Left }
            "#,
            classify: |_| Class::Harmless,
            paper: PaperRow { t: 5, e: 9, unfiltered: (0, 8, 0), filtered: (0, 0, 0) },
        },
        Benchmark {
            name: "FieldGPS",
            domain: Domain::TouchDevelop,
            source: r#"
                store { table Points { tag: set } register TrackName; }
                txn addpoint() { let r = Points.add_row(); }
                txn tagpoint(r, t) { Points[r].tag.add(t); }
                txn renametrack(n) { TrackName.put(n); }
                txn resettrack() { TrackName.put(""); }
            "#,
            classify: |_| Class::Harmless,
            paper: PaperRow { t: 4, e: 5, unfiltered: (0, 0, 0), filtered: (0, 0, 0) },
        },
        Benchmark {
            name: "Instant Poll",
            domain: Domain::TouchDevelop,
            source: r#"
                store { map Yes; map No; }
                local dev;
                txn voteyes() { Yes.put(dev, 1); display No.get(dev); }
                txn voteno()  { No.put(dev, 1); display Yes.get(dev); }
                txn viewyes() { display Yes.get(dev); }
                txn viewno()  { display No.get(dev); }
                atomicset { Yes }
                atomicset { No }
            "#,
            classify: |_| Class::Harmless,
            paper: PaperRow { t: 4, e: 6, unfiltered: (0, 2, 0), filtered: (0, 0, 0) },
        },
        Benchmark {
            name: "Expense Rec.",
            domain: Domain::TouchDevelop,
            source: r#"
                store { table Expenses { amount: reg, note: reg } counter Total; }
                txn addexpense(a, n) {
                    let r = Expenses.add_row();
                    Expenses[r].amount.set(a);
                    Expenses[r].note.set(n);
                    Total.inc(1);
                }
                txn editnote(r, n) { Expenses[r].note.set(n); }
                txn viewexpense(r) { display Expenses[r].amount.get(); }
                txn viewtotal() { display Total.get(); }
                // Budget check against a threshold kept in an app-constant
                // slot the app never writes concurrently (false alarm).
                txn checkbudget(x) { display Total.get(); }
            "#,
            classify: |sig| {
                if any(sig, &["checkbudget"]) {
                    Class::FalseAlarm
                } else {
                    Class::Harmless
                }
            },
            paper: PaperRow { t: 5, e: 9, unfiltered: (0, 1, 1), filtered: (0, 0, 0) },
        },
        Benchmark {
            name: "Sky Locale",
            domain: Domain::TouchDevelop,
            source: r#"
                store {
                    table Trans { text: reg, author: reg, votes: set }
                    map Names;
                    counter Edits;
                }
                txn claimname(n, u) {
                    // User-name uniqueness without synchronization: harmful.
                    if (!Names.contains(n)) { Names.put(n, u); }
                }
                txn addtrans(k, t, a) {
                    Trans[k].text.set(t);
                    Trans[k].author.set(a);
                    Edits.inc(1);
                }
                txn edittrans(k, t) {
                    if (Trans.contains(k)) { Trans[k].text.set(t); Edits.inc(1); }
                }
                txn deltrans(k) { Trans.delete_row(k); }
                txn votetrans(k, u) { Trans[k].votes.add(u); }
                txn unvote(k, u) {
                    if (Trans[k].votes.contains(u)) { Trans[k].votes.remove(u); }
                }
                txn viewtrans(k) { display Trans[k].text.get(); }
                txn viewauthor(k) { display Trans[k].author.get(); }
                txn viewvotes(k, u) { display Trans[k].votes.contains(u); }
                txn viewedits() { display Edits.get(); }
                txn viewname(n) { display Names.get(n); }
                txn checkname(n) { Names.contains(n); }
            "#,
            classify: |sig| {
                if sig.len() == 1 && sig.contains("claimname") {
                    Class::Harmful
                } else {
                    Class::Harmless
                }
            },
            paper: PaperRow { t: 12, e: 32, unfiltered: (1, 34, 0), filtered: (1, 4, 0) },
        },
        Benchmark {
            name: "Events",
            domain: Domain::TouchDevelop,
            source: r#"
                store { table Log { text: reg } register NextId; }
                txn append(t) {
                    // Sequence-number allocation: read-increment-write.
                    let n = NextId.get();
                    NextId.put(n);
                    Log[n].text.set(t);
                }
                txn viewlog(n) { display Log[n].text.get(); }
                txn clearlog(n) { Log.delete_row(n); }
                txn viewnext() { display NextId.get(); }
            "#,
            classify: |sig| {
                if sig.contains("append") && sig.len() == 1 {
                    Class::Harmful
                } else {
                    Class::Harmless
                }
            },
            paper: PaperRow { t: 4, e: 29, unfiltered: (1, 1, 0), filtered: (1, 0, 0) },
        },
        Benchmark {
            name: "Cloud Card",
            domain: Domain::TouchDevelop,
            source: r#"
                store {
                    table Cards { name: reg, phone: reg, mail: reg }
                    map Handles;
                    map Bio;
                }
                local me;
                txn claimhandle(h, u) {
                    if (!Handles.contains(h)) { Handles.put(h, u); }
                }
                txn setname(c, n) { Cards[c].name.set(n); }
                txn setphone(c, p) { Cards[c].phone.set(p); }
                txn setmail(c, m) { Cards[c].mail.set(m); }
                txn delcard(c) { Cards.delete_row(c); }
                txn viewcard(c) {
                    display Cards[c].name.get();
                    display Cards[c].phone.get();
                    display Cards[c].mail.get();
                }
                txn viewhandle(h) { display Handles.get(h); }
                txn hashandle(h) { Handles.contains(h); }
                txn syncbio(v) { Bio.put(me, ""); Bio.put(me, v); }
                txn readbio() { display Bio.get(me); }
            "#,
            classify: |sig| {
                if sig.len() == 1 && sig.contains("claimhandle") {
                    Class::Harmful
                } else {
                    Class::Harmless
                }
            },
            paper: PaperRow { t: 9, e: 25, unfiltered: (1, 5, 0), filtered: (1, 0, 0) },
        },
        Benchmark {
            name: "Relatd",
            domain: Domain::TouchDevelop,
            source: r#"
                store {
                    table Users { flwrs: set, posts: set, bio: reg }
                    map Handles;
                    counter Active;
                }
                txn register(h, u) {
                    if (!Handles.contains(h)) { Handles.put(h, u); Active.inc(1); }
                }
                txn follow(a, b) {
                    if (Users.contains(a)) { Users[a].flwrs.add(b); }
                }
                txn unfollow(a, b) {
                    if (Users[a].flwrs.contains(b)) { Users[a].flwrs.remove(b); }
                }
                txn post(u, p) { Users[u].posts.add(p); }
                txn unpost(u, p) { Users[u].posts.remove(p); }
                txn setbio(u, b) { Users[u].bio.set(b); }
                txn delaccount(u) { Users.delete_row(u); Active.inc(-1); }
                txn viewbio(u) { display Users[u].bio.get(); }
                txn viewposts(u, p) { display Users[u].posts.contains(p); }
                txn viewflwrs(u, b) { display Users[u].flwrs.contains(b); }
                txn viewactive() { display Active.get(); }
                txn viewhandle(h) { display Handles.get(h); }
                txn hashandle(h) { display Handles.contains(h); }
                txn isuser(u) { display Users.contains(u); }
                atomicset { Users }
                atomicset { Handles }
                atomicset { Active }
            "#,
            classify: |sig| {
                if sig.len() == 1 && sig.contains("register") {
                    Class::Harmful
                } else {
                    Class::Harmless
                }
            },
            paper: PaperRow { t: 14, e: 69, unfiltered: (1, 18, 0), filtered: (1, 3, 0) },
        },
        Benchmark {
            name: "Color Line",
            domain: Domain::TouchDevelop,
            source: r#"
                store { register Board; register Score; register Turn; }
                txn moveball(b) {
                    let cur = Board.get();
                    Board.put(b);
                }
                txn addscore(s) {
                    if (Score.get() < s) { Score.put(s); }
                }
                txn endturn(t) {
                    if (Turn.get() != t) { Turn.put(t); }
                }
            "#,
            classify: |_| Class::Harmful,
            paper: PaperRow { t: 3, e: 10, unfiltered: (3, 0, 0), filtered: (3, 0, 0) },
        },
        Benchmark {
            name: "Unique Poll",
            domain: Domain::TouchDevelop,
            source: r#"
                store { set Voted; counter Yes; }
                txn voteonce(u) { Voted.add(u); Yes.inc(1); }
                txn retract(u) { Voted.remove(u); Yes.inc(-1); }
                txn viewresult() { display Yes.get(); }
                txn hasvoted(u) { display Voted.contains(u); }
            "#,
            classify: |_| Class::Harmless,
            paper: PaperRow { t: 4, e: 4, unfiltered: (0, 4, 0), filtered: (0, 0, 0) },
        },
    ]
}
