//! The Section 8 quiz case studies: argument equalities (Figure 10) and
//! fresh unique row identities (Figure 12).
//!
//! Run with `cargo run -p c4-examples --bin quiz_fresh_rows`.

use c4::{AnalysisFeatures, Checker};

fn analyze(label: &str, source: &str, features: AnalysisFeatures) {
    let program = c4_lang::parse(source).expect("parse");
    let history = c4_lang::abstract_history(&program).expect("interp");
    let result = Checker::new(history, features).run();
    println!(
        "{label:<52} {}",
        if result.serializable() {
            "serializable".to_string()
        } else {
            format!("{} violation(s)", result.violations.len())
        }
    );
}

fn main() {
    // Figure 10: both field accesses use the same row. Without tracked
    // equalities, the analysis would see an anti-dependency between the
    // two updateQuestion instances and a phantom cycle.
    let fig10 = r#"
        store { table Quiz { question: reg, answer: reg } }
        local x;
        txn updateQuestion(q, a) {
            Quiz[x].question.set(q);
            Quiz[x].answer.set(a);
        }
        txn getQuestion() {
            display Quiz[x].question.get();
            display Quiz[x].answer.get();
        }
    "#;
    println!("Figure 10 (session-local row, tracked equalities):");
    analyze("  full analysis", fig10, AnalysisFeatures::default());
    analyze(
        "  without constraints (Figure 10c false alarm)",
        fig10,
        AnalysisFeatures { constraints: false, ..AnalysisFeatures::default() },
    );

    // Figure 12: rows created by add_row have fresh unique identities —
    // any other transaction touching the row must have observed its
    // creation.
    let fig12 = r#"
        store { table Quiz { question: reg } }
        txn addQuestion() {
            let r = Quiz.add_row();
            Quiz[r].question.set("?");
        }
        txn getQuestion(x) {
            display Quiz[x].question.get();
        }
    "#;
    println!("\nFigure 12 (fresh unique row identities):");
    analyze("  full analysis", fig12, AnalysisFeatures::default());
    analyze(
        "  without freshness axioms (Figure 12c false alarm)",
        fig12,
        AnalysisFeatures { freshness: false, ..AnalysisFeatures::default() },
    );
}
