//! Quickstart: analyze the paper's Figure 1a program.
//!
//! ```text
//! txn P(x,y): M.put(x,y);      txn G(z): return M.get(z);
//! ```
//!
//! Run with `cargo run -p c4-examples --bin quickstart`.

use c4::{AnalysisFeatures, Checker};

fn main() {
    // 1. Write the client program in CCL.
    let source = r#"
        store { map M; }
        txn P(x, y) { M.put(x, y); }
        txn G(z)    { M.get(z); }
    "#;

    // 2. Front end: parse and infer the abstract history.
    let program = c4_lang::parse(source).expect("parse");
    let history = c4_lang::abstract_history(&program).expect("abstract interpretation");
    println!("abstract history:\n{history}");

    // 3. Back end: run the full analysis (Algorithm 1).
    let result = Checker::new(history.clone(), AnalysisFeatures::default()).run();

    // 4. Report.
    if result.serializable() {
        println!("the program is serializable (proof covers any number of sessions)");
    } else {
        println!(
            "{} violation(s) found; generalization {}",
            result.violations.len(),
            if result.generalized { "complete (all cycles subsumed)" } else { "bounded" }
        );
        for v in &result.violations {
            let names: Vec<_> =
                v.txs.iter().map(|&i| history.txs[i].name.as_str()).collect();
            println!("\nviolation over {{{}}} with labels {:?}:", names.join(", "), v.labels);
            if let Some(ce) = &v.counterexample {
                println!("counter-example (validated against the concrete DSG):\n{ce}");
            }
        }
    }

    // 5. The same program with session-local keys is serializable — the
    // SMT stage proves it (Section 2, "Logical Serializability Checking").
    let fixed = r#"
        store { map M; }
        local u;
        txn P(y) { M.put(u, y); }
        txn G()  { M.get(u); }
    "#;
    let program = c4_lang::parse(fixed).expect("parse");
    let history = c4_lang::abstract_history(&program).expect("abstract interpretation");
    let result = Checker::new(history, AnalysisFeatures::default()).run();
    println!(
        "\nwith session-local keys: serializable = {}",
        result.serializable()
    );
}
