//! The Section 8 `addFollower` case study: why control-flow constraints
//! and asymmetric commutativity matter.
//!
//! Run with `cargo run -p c4-examples --bin twitter_followers`.

use c4::{AnalysisFeatures, Checker};

const SOURCE: &str = r#"
    store { table Users { flwrs: set } }
    txn addFollower(n1, n2) {
        if (Users.contains(n1)) {
            Users[n1].flwrs.add(n2);
        }
    }
    txn register(n) { Users[n].flwrs.add(n); }
"#;

fn run(label: &str, features: AnalysisFeatures) {
    let program = c4_lang::parse(SOURCE).expect("parse");
    let history = c4_lang::abstract_history(&program).expect("interp");
    let result = Checker::new(history.clone(), features).run();
    println!(
        "{label:<40} {} violation(s){}",
        result.violations.len(),
        if result.violations.is_empty() {
            String::new()
        } else {
            let sigs: Vec<String> = result
                .violations
                .iter()
                .map(|v| {
                    let names: Vec<_> =
                        v.txs.iter().map(|&i| history.txs[i].name.as_str()).collect();
                    format!("{{{}}}", names.join(","))
                })
                .collect();
            format!(": {}", sigs.join(" "))
        }
    );
}

fn main() {
    println!("guarded follower insertion (Figure 11) under feature ablations:\n");
    run("full analysis", AnalysisFeatures::default());
    run(
        "without control flow (Figure 11c alarm)",
        AnalysisFeatures { control_flow: false, ..AnalysisFeatures::default() },
    );
    run(
        "without asymmetric commutativity",
        AnalysisFeatures { asymmetric: false, ..AnalysisFeatures::default() },
    );
    run(
        "without argument constraints",
        AnalysisFeatures { constraints: false, ..AnalysisFeatures::default() },
    );
}
