//! Static analysis vs. dynamic exploration on a benchmark with a
//! hard-to-trigger bug (Section 9.5).
//!
//! Run with `cargo run --release -p c4-examples --bin static_vs_dynamic [runs]`.

use c4::AnalysisFeatures;
use c4_dynamic::{explore, ExploreConfig};

fn main() {
    let runs: usize =
        std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(100);
    let bench = c4_suite::benchmark("Sky Locale").expect("suite benchmark");
    println!("benchmark: {} ({} runs of dynamic exploration)\n", bench.name, runs);

    // Static analysis.
    let outcome = c4_suite::analyze(&bench, &AnalysisFeatures::default());
    println!("static analysis (filtered): {} violations", outcome.filtered.len());
    for (sig, class) in &outcome.filtered {
        println!("  {{{}}} — {:?}", sig.iter().cloned().collect::<Vec<_>>().join(","), class);
    }

    // Dynamic exploration.
    let program = c4_lang::parse(bench.source).expect("parse");
    let report = explore(&program, &ExploreConfig { runs, ..ExploreConfig::default() });
    println!(
        "\ndynamic exploration: {} cyclic runs out of {}, {} distinct violations",
        report.cyclic_runs, report.runs, report.violations.len()
    );
    for v in &report.violations {
        println!("  {{{}}}", v.iter().cloned().collect::<Vec<_>>().join(","));
    }

    let missed: Vec<_> = outcome
        .filtered
        .iter()
        .filter(|(sig, _)| !report.violations.iter().any(|d| sig.is_subset(d)))
        .collect();
    println!(
        "\nstatically-found violations missed by dynamic exploration: {}",
        missed.len()
    );
    for (sig, class) in missed {
        println!("  {{{}}} — {:?}", sig.iter().cloned().collect::<Vec<_>>().join(","), class);
    }
}
